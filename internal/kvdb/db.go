package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"deepnote/internal/jfs"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// Errors reported by the store.
var (
	// ErrNotFound is returned by Get for missing keys.
	ErrNotFound = errors.New("kvdb: key not found")
	// ErrCrashed is the paper's RocksDB crash signature: the WAL could
	// not be persisted for longer than the stall limit.
	ErrCrashed = errors.New("kvdb: sync_without_flush_called: WAL persistence failure, database crashed")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("kvdb: database closed")
)

// Options tunes the engine.
type Options struct {
	// MemtableBytes is the flush threshold (default 256 KiB).
	MemtableBytes int
	// WALFlushBytes is the WAL buffer threshold that forces a
	// synchronous flush to the filesystem (default 64 KiB).
	WALFlushBytes int
	// L0CompactTrigger is the L0 table count that schedules compaction
	// (default 4).
	L0CompactTrigger int
	// L0StopTrigger is the L0 table count that blocks writes until
	// compaction succeeds — RocksDB's stop condition (default 12).
	L0StopTrigger int
	// CacheTables keeps table bytes in memory (page-cache semantics,
	// default true via withDefaults).
	CacheTables *bool
	// WALStallLimit is how long the write path tolerates WAL I/O
	// failures before the database crashes (default 80 s, reproducing
	// the paper's ≈81 s RocksDB time-to-crash).
	WALStallLimit time.Duration
	// RetryInterval is the pause between WAL retry attempts while
	// blocked (default 1 s).
	RetryInterval time.Duration
	// CPUCostPerOp is the simulated compute cost per operation
	// (default 7.5 µs, calibrated to the paper's ≈1.1e5 ops/s).
	CPUCostPerOp time.Duration
	// RetryHook, if set, runs after every failed WAL retry with the
	// current stall duration. Returning false abandons the blocked
	// write with an error instead of waiting for the stall limit;
	// experiments also use the hook to change testbed conditions at a
	// given virtual time (e.g. ending an attack).
	RetryHook func(stalled time.Duration) bool
	// Seed drives the memtable's deterministic skiplist heights.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 256 << 10
	}
	if o.WALFlushBytes <= 0 {
		o.WALFlushBytes = 64 << 10
	}
	if o.L0CompactTrigger <= 0 {
		o.L0CompactTrigger = 4
	}
	if o.L0StopTrigger <= 0 {
		o.L0StopTrigger = 12
	}
	if o.CacheTables == nil {
		t := true
		o.CacheTables = &t
	}
	if o.WALStallLimit <= 0 {
		o.WALStallLimit = 80 * time.Second
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = time.Second
	}
	if o.CPUCostPerOp <= 0 {
		o.CPUCostPerOp = 7500 * time.Nanosecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DBStats counts engine activity.
type DBStats struct {
	Puts, Gets, Deletes     int64
	MemtableFlushes         int64
	Compactions             int64
	WALFlushes, WALErrors   int64
	StallEpisodes           int64
	BytesWritten, BytesRead int64
}

// DB is an open store.
type DB struct {
	fs    *jfs.FS
	clock simclock.Clock
	opts  Options

	mem    *Memtable
	seq    uint64
	wal    *wal
	walGen int
	sstGen int
	l0     []*SSTable // newest first
	l1     []*SSTable // sorted by min key, disjoint

	stallSince time.Time
	crashed    bool
	crashErr   error
	crashedAt  time.Time
	closed     bool

	stats DBStats
}

const walName = "WAL"

func sstName(level, gen int) string { return fmt.Sprintf("sst-%d-%06d", level, gen) }

// Open opens (or creates) a database in the root of the filesystem,
// replaying the WAL left by any previous incarnation.
func Open(fs *jfs.FS, clock simclock.Clock, opts Options) (*DB, error) {
	db := &DB{
		fs:    fs,
		clock: clock,
		opts:  opts.withDefaults(),
	}
	db.mem = NewMemtable(db.opts.Seed)

	// Discover existing tables.
	for _, name := range fs.List() {
		if !strings.HasPrefix(name, "sst-") {
			continue
		}
		parts := strings.SplitN(name, "-", 3)
		if len(parts) != 3 {
			continue
		}
		level, err1 := strconv.Atoi(parts[1])
		gen, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		t, err := openSSTable(fs, name, *db.opts.CacheTables)
		if err != nil {
			return nil, err
		}
		if gen >= db.sstGen {
			db.sstGen = gen + 1
		}
		// The sequence counter must resume above everything already
		// persisted, or resurrected old entries would shadow new writes.
		if t.MaxSeq() > db.seq {
			db.seq = t.MaxSeq()
		}
		if level == 0 {
			db.l0 = append(db.l0, t)
		} else {
			db.l1 = append(db.l1, t)
		}
	}
	// L0: newest (highest gen) first.
	sort.Slice(db.l0, func(i, j int) bool { return db.l0[i].Name > db.l0[j].Name })
	sort.Slice(db.l1, func(i, j int) bool {
		return bytes.Compare(db.l1[i].minKey, db.l1[j].minKey) < 0
	})

	// WAL recovery.
	wf, err := fs.Open(walName)
	if errors.Is(err, jfs.ErrNotFound) {
		wf, err = fs.Create(walName)
	}
	if err != nil {
		return nil, err
	}
	recs, err := replayWAL(wf)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if rec.seq > db.seq {
			db.seq = rec.seq
		}
		switch rec.op {
		case walOpPut:
			db.mem.Put(rec.key, rec.value, rec.seq)
		case walOpDelete:
			db.mem.Delete(rec.key, rec.seq)
		}
	}
	db.wal = newWAL(wf, db.opts.WALFlushBytes)
	return db, nil
}

// Stats returns a copy of the counters.
func (db *DB) Stats() DBStats { return db.stats }

// PublishMetrics pushes the engine's counters into a registry under the
// "kvdb." prefix (no-op on a nil registry).
func (db *DB) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s := db.stats
	reg.Add("kvdb.puts", s.Puts)
	reg.Add("kvdb.gets", s.Gets)
	reg.Add("kvdb.deletes", s.Deletes)
	reg.Add("kvdb.memtable_flushes", s.MemtableFlushes)
	reg.Add("kvdb.compactions", s.Compactions)
	reg.Add("kvdb.wal_flushes", s.WALFlushes)
	reg.Add("kvdb.wal_errors", s.WALErrors)
	reg.Add("kvdb.stall_episodes", s.StallEpisodes)
	reg.Add("kvdb.bytes_written", s.BytesWritten)
	reg.Add("kvdb.bytes_read", s.BytesRead)
	if db.crashed {
		reg.Add("kvdb.crashes", 1)
	}
	l0, l1 := db.Levels()
	reg.MaxGauge("kvdb.l0_tables_peak", float64(l0))
	reg.MaxGauge("kvdb.l1_tables_peak", float64(l1))
}

// Crashed reports the crash state.
func (db *DB) Crashed() (bool, error) { return db.crashed, db.crashErr }

// CrashedAt returns when the database crashed (zero if it has not).
func (db *DB) CrashedAt() time.Time { return db.crashedAt }

// Seq returns the latest sequence number.
func (db *DB) Seq() uint64 { return db.seq }

// Levels returns the current table counts (L0, L1) for diagnostics.
func (db *DB) Levels() (int, int) { return len(db.l0), len(db.l1) }

func (db *DB) guard() error {
	if db.closed {
		return ErrClosed
	}
	if db.crashed {
		return db.crashErr
	}
	return nil
}

func (db *DB) chargeCPU() { db.clock.Sleep(db.opts.CPUCostPerOp) }

// Put stores key → value. Under device failure the write path blocks,
// retrying the WAL, until either the device recovers or the stall limit
// expires and the database crashes.
func (db *DB) Put(key, value []byte) error {
	return db.write(walRecord{op: walOpPut, key: key, value: value})
}

// Delete removes key (writes a tombstone).
func (db *DB) Delete(key []byte) error {
	return db.write(walRecord{op: walOpDelete, key: key})
}

func (db *DB) write(rec walRecord) error {
	if err := db.guard(); err != nil {
		return err
	}
	db.chargeCPU()
	db.seq++
	rec.seq = db.seq

	if db.wal.append(rec) {
		if err := db.persistWAL(); err != nil {
			return err
		}
	}
	switch rec.op {
	case walOpPut:
		db.mem.Put(rec.key, rec.value, rec.seq)
		db.stats.Puts++
		db.stats.BytesWritten += int64(len(rec.key) + len(rec.value))
	case walOpDelete:
		db.mem.Delete(rec.key, rec.seq)
		db.stats.Deletes++
	}
	if db.mem.ApproximateBytes() >= db.opts.MemtableBytes {
		if err := db.flushMemtable(); err != nil {
			return err
		}
	}
	db.fs.Tick()
	return nil
}

// persistWAL flushes the WAL buffer, blocking and retrying on device
// failure until success or crash.
func (db *DB) persistWAL() error {
	for {
		db.stats.WALFlushes++
		err := db.wal.flush()
		if err == nil {
			db.stallSince = time.Time{}
			return nil
		}
		db.stats.WALErrors++
		now := db.clock.Now()
		if db.stallSince.IsZero() {
			db.stallSince = now
			db.stats.StallEpisodes++
		}
		if now.Sub(db.stallSince) >= db.opts.WALStallLimit {
			db.crash(err)
			return db.crashErr
		}
		// Blocked: wait and retry (group-commit convoy).
		db.clock.Sleep(db.opts.RetryInterval)
		db.fs.Tick()
		if db.opts.RetryHook != nil && !db.opts.RetryHook(db.clock.Now().Sub(db.stallSince)) {
			return fmt.Errorf("kvdb: write abandoned while device stalled: %w", err)
		}
	}
}

// SetRetryHook installs (or clears) the WAL retry hook; see
// Options.RetryHook.
func (db *DB) SetRetryHook(hook func(stalled time.Duration) bool) {
	db.opts.RetryHook = hook
}

// SyncWAL makes everything written so far durable: the WAL buffer reaches
// the file and the filesystem journal commits. This is the fsync-equivalent
// a crash-consistency test needs before simulating power loss.
func (db *DB) SyncWAL() error {
	if err := db.guard(); err != nil {
		return err
	}
	if err := db.persistWAL(); err != nil {
		return err
	}
	if err := db.fs.Sync(); err != nil {
		return db.storageFailure(err)
	}
	return nil
}

func (db *DB) crash(cause error) {
	db.crashed = true
	db.crashedAt = db.clock.Now()
	db.crashErr = fmt.Errorf("%w: %v", ErrCrashed, cause)
}

// flushMemtable writes the memtable as a new L0 table and rotates the WAL.
func (db *DB) flushMemtable() error {
	if db.mem.Len() == 0 {
		return nil
	}
	// RocksDB's stop condition: too many L0 files block writes until
	// compaction clears the backlog.
	if len(db.l0) >= db.opts.L0StopTrigger {
		if err := db.compact(); err != nil {
			return err
		}
	}
	entries := db.mem.Entries()
	name := sstName(0, db.sstGen)
	t, err := writeSSTable(db.fs, name, entries, *db.opts.CacheTables)
	if err != nil {
		return db.storageFailure(err)
	}
	db.sstGen++
	db.l0 = append([]*SSTable{t}, db.l0...)
	db.stats.MemtableFlushes++

	// Rotate the WAL now that its contents are durable in the table.
	if err := db.rotateWAL(); err != nil {
		return err
	}
	db.mem = NewMemtable(db.opts.Seed + int64(db.sstGen))

	if len(db.l0) >= db.opts.L0CompactTrigger {
		if err := db.compact(); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) rotateWAL() error {
	if err := db.wal.sync(); err != nil {
		return db.storageFailure(err)
	}
	if err := db.fs.Remove(walName); err != nil {
		return db.storageFailure(err)
	}
	wf, err := db.fs.Create(walName)
	if err != nil {
		return db.storageFailure(err)
	}
	db.wal = newWAL(wf, db.opts.WALFlushBytes)
	return nil
}

// storageFailure routes non-WAL storage errors through the same stall
// accounting as WAL failures: persistent failure crashes the database.
func (db *DB) storageFailure(err error) error {
	now := db.clock.Now()
	if db.stallSince.IsZero() {
		db.stallSince = now
		db.stats.StallEpisodes++
	}
	if now.Sub(db.stallSince) >= db.opts.WALStallLimit {
		db.crash(err)
		return db.crashErr
	}
	return err
}

// compact merges all L0 tables with the overlapping part of L1 into a new
// sorted run of L1 tables.
func (db *DB) compact() error {
	if len(db.l0) == 0 {
		return nil
	}
	merged := make(map[string]Entry)
	// Oldest first so newer entries overwrite.
	all := append([]*SSTable{}, db.l1...)
	for i := len(db.l0) - 1; i >= 0; i-- {
		all = append(all, db.l0[i])
	}
	for _, t := range all {
		entries, err := t.Entries()
		if err != nil {
			return db.storageFailure(err)
		}
		for _, e := range entries {
			prev, ok := merged[string(e.Key)]
			if !ok || e.Seq >= prev.Seq {
				merged[string(e.Key)] = e
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if e.Value == nil {
			continue // tombstones die at the bottom level
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Write replacement L1 run, splitting near the file-size ceiling.
	const targetBytes = 1 << 20
	var newL1 []*SSTable
	var batch []Entry
	var batchBytes int
	flushBatch := func() error {
		if len(batch) == 0 {
			return nil
		}
		t, err := writeSSTable(db.fs, sstName(1, db.sstGen), batch, *db.opts.CacheTables)
		if err != nil {
			return db.storageFailure(err)
		}
		db.sstGen++
		newL1 = append(newL1, t)
		batch = nil
		batchBytes = 0
		return nil
	}
	for _, k := range keys {
		e := merged[k]
		batch = append(batch, e)
		batchBytes += len(e.Key) + len(e.Value) + 16
		if batchBytes >= targetBytes {
			if err := flushBatch(); err != nil {
				return err
			}
		}
	}
	if err := flushBatch(); err != nil {
		return err
	}

	// Retire the inputs.
	for _, t := range append(append([]*SSTable{}, db.l0...), db.l1...) {
		if err := db.fs.Remove(t.Name); err != nil {
			return db.storageFailure(err)
		}
	}
	db.l0 = nil
	db.l1 = newL1
	db.stats.Compactions++
	db.stallSince = time.Time{}
	return nil
}

// Get returns the value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	if err := db.guard(); err != nil {
		return nil, err
	}
	db.chargeCPU()
	db.stats.Gets++
	if v, found := db.mem.Get(key); found {
		if v == nil {
			return nil, ErrNotFound
		}
		db.stats.BytesRead += int64(len(v))
		return append([]byte(nil), v...), nil
	}
	for _, t := range db.l0 {
		e, found, err := t.Get(key)
		if err != nil {
			return nil, err
		}
		if found {
			if e.Value == nil {
				return nil, ErrNotFound
			}
			db.stats.BytesRead += int64(len(e.Value))
			return e.Value, nil
		}
	}
	// L1 is disjoint: binary search for the covering table.
	i := sort.Search(len(db.l1), func(i int) bool {
		return bytes.Compare(db.l1[i].maxKey, key) >= 0
	})
	if i < len(db.l1) {
		e, found, err := db.l1[i].Get(key)
		if err != nil {
			return nil, err
		}
		if found && e.Value != nil {
			db.stats.BytesRead += int64(len(e.Value))
			return e.Value, nil
		}
	}
	return nil, ErrNotFound
}

// Flush persists the memtable and WAL durably.
func (db *DB) Flush() error {
	if err := db.guard(); err != nil {
		return err
	}
	if err := db.persistWAL(); err != nil {
		return err
	}
	if db.mem.Len() > 0 {
		if err := db.flushMemtable(); err != nil {
			return err
		}
	}
	return db.fs.Sync()
}

// Close flushes and marks the handle unusable.
func (db *DB) Close() error {
	if db.closed {
		return ErrClosed
	}
	var err error
	if !db.crashed {
		err = db.Flush()
	}
	db.closed = true
	return err
}
