package kvdb

import (
	"errors"
	"fmt"
	"testing"

	"deepnote/internal/jfs"
)

// FuzzDBOps interprets the fuzz input as an operation stream (put, delete,
// overwrite, flush, crash-reopen) mirrored against a map; the store must
// agree with the map after every recovery and at the end. This drives the
// memtable, WAL replay, SSTables, and compaction under adversarial
// schedules instead of the oracle test's fixed RNG.
func FuzzDBOps(f *testing.F) {
	f.Add([]byte{0, 1, 10, 0, 2, 20, 3, 0, 0, 4, 0, 0, 1, 1, 0})
	f.Add([]byte{0, 5, 1, 0, 5, 2, 4, 0, 0, 0, 5, 3, 1, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newRig(t, Options{MemtableBytes: 2 << 10, L0CompactTrigger: 3})
		db := r.db
		model := make(map[string]string)
		key := func(b byte) string { return fmt.Sprintf("key-%03d", int(b)%64) }

		for len(data) >= 3 {
			op, kb, vb := data[0], data[1], data[2]
			data = data[3:]
			k := key(kb)
			switch op % 4 {
			case 0: // put / overwrite
				v := fmt.Sprintf("val-%d-%d", kb, vb)
				if err := db.Put([]byte(k), []byte(v)); err != nil {
					t.Fatalf("put %q: %v", k, err)
				}
				model[k] = v
			case 1: // delete (also of absent keys)
				if err := db.Delete([]byte(k)); err != nil {
					t.Fatalf("delete %q: %v", k, err)
				}
				delete(model, k)
			case 2: // flush memtable to a table
				if err := db.Flush(); err != nil {
					t.Fatalf("flush: %v", err)
				}
			case 3: // make durable, then crash and recover
				if err := db.Flush(); err != nil {
					t.Fatalf("pre-crash flush: %v", err)
				}
				fs2, err := jfs.Mount(r.disk, r.clock, jfs.Config{})
				if err != nil {
					t.Fatalf("recovery mount: %v", err)
				}
				db, err = Open(fs2, r.clock, Options{MemtableBytes: 2 << 10, L0CompactTrigger: 3})
				if err != nil {
					t.Fatalf("recovery open: %v", err)
				}
			}
		}

		// The store must agree with the model exactly.
		for k, want := range model {
			got, err := db.Get([]byte(k))
			if err != nil {
				t.Fatalf("get %q: %v", k, err)
			}
			if string(got) != want {
				t.Fatalf("%q = %q, model %q", k, got, want)
			}
		}
		for i := 0; i < 64; i++ {
			k := fmt.Sprintf("key-%03d", i)
			if _, ok := model[k]; ok {
				continue
			}
			if _, err := db.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted/missing %q visible: %v", k, err)
			}
		}
		entries, err := db.Scan(nil, nil, 0)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if len(entries) != len(model) {
			t.Fatalf("scan %d keys, model %d", len(entries), len(model))
		}
	})
}
