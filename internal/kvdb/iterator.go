package kvdb

import (
	"bytes"
	"sort"
)

// Iterator walks live keys in ascending order over a merged snapshot of
// the memtable and all tables. The snapshot is materialized at creation:
// writes after NewIterator are not visible, matching snapshot-isolation
// iterator semantics.
type Iterator struct {
	entries []Entry
	pos     int
}

// NewIterator snapshots the database and returns an iterator positioned
// before the first key at or after start (nil = from the beginning). The
// iterator charges the I/O needed to read uncached tables.
func (db *DB) NewIterator(start []byte) (*Iterator, error) {
	if err := db.guard(); err != nil {
		return nil, err
	}
	db.chargeCPU()
	merged := make(map[string]Entry)
	// Oldest first so newer entries win: L1, then L0 oldest→newest,
	// then the memtable.
	sources := append([]*SSTable{}, db.l1...)
	for i := len(db.l0) - 1; i >= 0; i-- {
		sources = append(sources, db.l0[i])
	}
	for _, t := range sources {
		entries, err := t.Entries()
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			prev, ok := merged[string(e.Key)]
			if !ok || e.Seq >= prev.Seq {
				merged[string(e.Key)] = e
			}
		}
	}
	for _, e := range db.mem.Entries() {
		prev, ok := merged[string(e.Key)]
		if !ok || e.Seq >= prev.Seq {
			merged[string(e.Key)] = e
		}
	}
	it := &Iterator{}
	for _, e := range merged {
		if e.Value == nil {
			continue // tombstone
		}
		it.entries = append(it.entries, e)
	}
	sort.Slice(it.entries, func(i, j int) bool {
		return bytes.Compare(it.entries[i].Key, it.entries[j].Key) < 0
	})
	if start != nil {
		it.pos = sort.Search(len(it.entries), func(i int) bool {
			return bytes.Compare(it.entries[i].Key, start) >= 0
		})
	}
	return it, nil
}

// Valid reports whether the iterator points at an entry.
func (it *Iterator) Valid() bool { return it.pos < len(it.entries) }

// Key returns the current key; only valid while Valid().
func (it *Iterator) Key() []byte { return it.entries[it.pos].Key }

// Value returns the current value; only valid while Valid().
func (it *Iterator) Value() []byte { return it.entries[it.pos].Value }

// Next advances the iterator.
func (it *Iterator) Next() { it.pos++ }

// Scan returns up to limit live key/value pairs in [start, end) — end nil
// means unbounded, limit ≤ 0 means unlimited.
func (db *DB) Scan(start, end []byte, limit int) ([]Entry, error) {
	it, err := db.NewIterator(start)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for ; it.Valid(); it.Next() {
		if end != nil && bytes.Compare(it.Key(), end) >= 0 {
			break
		}
		out = append(out, Entry{Key: it.Key(), Value: it.Value()})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}
