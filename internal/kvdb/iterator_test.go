package kvdb

import (
	"bytes"
	"fmt"
	"testing"
)

func fillKeys(t *testing.T, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIteratorFullOrder(t *testing.T) {
	r := newRig(t, Options{MemtableBytes: 2 << 10}) // force flushes + compactions
	fillKeys(t, r.db, 200)
	it, err := r.db.NewIterator(nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var prev []byte
	for ; it.Valid(); it.Next() {
		if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
			t.Fatalf("keys out of order: %q then %q", prev, it.Key())
		}
		prev = append(prev[:0], it.Key()...)
		count++
	}
	if count != 200 {
		t.Fatalf("iterated %d keys, want 200", count)
	}
}

func TestIteratorSeesAllLayers(t *testing.T) {
	r := newRig(t, Options{MemtableBytes: 2 << 10})
	fillKeys(t, r.db, 100) // spread over L0/L1
	// Fresh writes stay in the memtable.
	r.db.Put([]byte("zzz-memtable"), []byte("fresh"))
	it, err := r.db.NewIterator([]byte("zzz"))
	if err != nil {
		t.Fatal(err)
	}
	if !it.Valid() || string(it.Key()) != "zzz-memtable" {
		t.Fatal("memtable entry missing from iterator")
	}
}

func TestIteratorSkipsTombstones(t *testing.T) {
	r := newRig(t, Options{MemtableBytes: 2 << 10})
	fillKeys(t, r.db, 50)
	for i := 0; i < 25; i++ {
		r.db.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	entries, err := r.db.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 25 {
		t.Fatalf("scan saw %d keys, want 25", len(entries))
	}
	if string(entries[0].Key) != "k0025" {
		t.Fatalf("first surviving key %q", entries[0].Key)
	}
}

func TestIteratorOverwriteWins(t *testing.T) {
	r := newRig(t, Options{MemtableBytes: 2 << 10})
	fillKeys(t, r.db, 60) // pushes early keys into tables
	r.db.Put([]byte("k0001"), []byte("new-value"))
	entries, err := r.db.Scan([]byte("k0001"), []byte("k0002"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || string(entries[0].Value) != "new-value" {
		t.Fatalf("scan returned %v", entries)
	}
}

func TestScanRangeAndLimit(t *testing.T) {
	r := newRig(t, Options{})
	fillKeys(t, r.db, 30)
	entries, err := r.db.Scan([]byte("k0010"), []byte("k0020"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("range scan = %d entries", len(entries))
	}
	limited, err := r.db.Scan(nil, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 5 {
		t.Fatalf("limited scan = %d entries", len(limited))
	}
}

func TestIteratorSnapshotIsolation(t *testing.T) {
	r := newRig(t, Options{})
	fillKeys(t, r.db, 10)
	it, err := r.db.NewIterator(nil)
	if err != nil {
		t.Fatal(err)
	}
	r.db.Put([]byte("k9999"), []byte("after-snapshot"))
	count := 0
	for ; it.Valid(); it.Next() {
		count++
	}
	if count != 10 {
		t.Fatalf("snapshot saw %d keys, want 10", count)
	}
}

func TestIteratorOnCrashedDB(t *testing.T) {
	r := newRig(t, Options{})
	r.db.crash(fmt.Errorf("synthetic"))
	if _, err := r.db.NewIterator(nil); err == nil {
		t.Fatal("iterator on crashed DB should fail")
	}
	if _, err := r.db.Scan(nil, nil, 0); err == nil {
		t.Fatal("scan on crashed DB should fail")
	}
}
