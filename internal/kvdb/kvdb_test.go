package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/jfs"
	"deepnote/internal/simclock"
)

type rig struct {
	clock *simclock.Virtual
	disk  *blockdev.Disk
	fs    *jfs.FS
	db    *DB
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 13)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	if err := jfs.Mkfs(disk, jfs.MkfsOptions{Blocks: 1 << 17}); err != nil {
		t.Fatal(err)
	}
	fs, err := jfs.Mount(disk, clock, jfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(fs, clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, disk: disk, fs: fs, db: db}
}

func TestPutGetRoundTrip(t *testing.T) {
	r := newRig(t, Options{})
	if err := r.db.Put([]byte("key1"), []byte("value1")); err != nil {
		t.Fatal(err)
	}
	v, err := r.db.Get([]byte("key1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "value1" {
		t.Fatalf("got %q", v)
	}
	if _, err := r.db.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	r := newRig(t, Options{})
	r.db.Put([]byte("k"), []byte("v1"))
	r.db.Put([]byte("k"), []byte("v2"))
	v, _ := r.db.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	if err := r.db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestMemtableFlushCreatesTables(t *testing.T) {
	r := newRig(t, Options{MemtableBytes: 8 << 10})
	val := bytes.Repeat([]byte{7}, 100)
	for i := 0; i < 200; i++ {
		if err := r.db.Put(benchKey(i, 16), val); err != nil {
			t.Fatal(err)
		}
	}
	if r.db.Stats().MemtableFlushes == 0 {
		t.Fatal("expected memtable flushes")
	}
	l0, l1 := r.db.Levels()
	if l0+l1 == 0 {
		t.Fatal("expected tables on disk")
	}
	// All keys must still resolve after flushes.
	for i := 0; i < 200; i++ {
		if _, err := r.db.Get(benchKey(i, 16)); err != nil {
			t.Fatalf("key %d lost after flush: %v", i, err)
		}
	}
}

func TestCompactionMergesAndDropsTombstones(t *testing.T) {
	r := newRig(t, Options{MemtableBytes: 4 << 10, L0CompactTrigger: 2})
	val := bytes.Repeat([]byte{9}, 100)
	for i := 0; i < 100; i++ {
		r.db.Put(benchKey(i, 16), val)
	}
	for i := 0; i < 50; i++ {
		r.db.Delete(benchKey(i, 16))
	}
	for i := 100; i < 200; i++ {
		r.db.Put(benchKey(i, 16), val)
	}
	if err := r.db.Flush(); err != nil {
		t.Fatal(err)
	}
	if r.db.Stats().Compactions == 0 {
		t.Fatal("expected compactions")
	}
	for i := 0; i < 50; i++ {
		if _, err := r.db.Get(benchKey(i, 16)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d visible: %v", i, err)
		}
	}
	for i := 50; i < 200; i++ {
		if _, err := r.db.Get(benchKey(i, 16)); err != nil {
			t.Fatalf("key %d lost in compaction: %v", i, err)
		}
	}
}

func TestWALRecoveryAfterCrash(t *testing.T) {
	r := newRig(t, Options{})
	r.db.Put([]byte("durable"), []byte("yes"))
	r.db.Put([]byte("gone"), []byte("maybe"))
	if err := r.db.Flush(); err != nil { // WAL + memtable durable
		t.Fatal(err)
	}
	// Crash: reopen the filesystem and database without Close.
	fs2, err := jfs.Mount(r.disk, r.clock, jfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(fs2, r.clock, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"durable", "gone"} {
		if _, err := db2.Get([]byte(k)); err != nil {
			t.Fatalf("key %q lost after recovery: %v", k, err)
		}
	}
}

func TestWALReplayRebuildsMemtableOnly(t *testing.T) {
	// Records synced to the WAL file but never flushed to a table must
	// reappear after reopen.
	r := newRig(t, Options{WALFlushBytes: 1}) // flush WAL after every write
	r.db.Put([]byte("wal-only"), []byte("recovered"))
	if err := r.db.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	fs2, err := jfs.Mount(r.disk, r.clock, jfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(fs2, r.clock, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db2.Get([]byte("wal-only"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "recovered" {
		t.Fatalf("got %q", v)
	}
}

func TestReadYourWritesProperty(t *testing.T) {
	r := newRig(t, Options{MemtableBytes: 16 << 10})
	model := map[string]string{}
	prop := func(kRaw, vRaw uint16) bool {
		k := fmt.Sprintf("key-%05d", kRaw%500)
		v := fmt.Sprintf("val-%d", vRaw)
		if err := r.db.Put([]byte(k), []byte(v)); err != nil {
			return false
		}
		model[k] = v
		// Verify a previously written key still reads correctly.
		for mk, mv := range model {
			got, err := r.db.Get([]byte(mk))
			if err != nil || string(got) != mv {
				return false
			}
			break
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBenchFillAndReadRandom(t *testing.T) {
	r := newRig(t, Options{})
	b := NewBench(r.db, r.clock)
	fill, err := b.Run(BenchSpec{Workload: WorkloadFillRandom, Num: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if fill.Ops != 2000 || fill.Errors != 0 {
		t.Fatalf("fill: %+v", fill)
	}
	read, err := b.Run(BenchSpec{Workload: WorkloadReadRandom, Num: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if read.Ops != 2000 {
		t.Fatalf("read: %+v", read)
	}
	if read.OpsPerSec() <= 0 || fill.ThroughputMBps() <= 0 {
		t.Fatal("rates must be positive")
	}
}

func TestBenchValidation(t *testing.T) {
	r := newRig(t, Options{})
	b := NewBench(r.db, r.clock)
	if _, err := b.Run(BenchSpec{Workload: "nonsense"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := b.Run(BenchSpec{Workload: WorkloadFillSeq}); err == nil {
		t.Fatal("fill without Num accepted")
	}
	if _, err := b.Run(BenchSpec{Workload: WorkloadReadWhileWriting}); err == nil {
		t.Fatal("readwhilewriting without Runtime accepted")
	}
	if _, err := b.Run(BenchSpec{Workload: WorkloadReadRandom}); err == nil {
		t.Fatal("readrandom without Num accepted")
	}
}

func TestReadWhileWritingBaselineMatchesPaper(t *testing.T) {
	// Paper Table 2, "No Attack": ≈8.7 MB/s and ≈1.1e5 ops/s.
	r := newRig(t, Options{})
	b := NewBench(r.db, r.clock)
	if _, err := b.Run(BenchSpec{Workload: WorkloadFillRandom, Num: 5000}); err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(BenchSpec{Workload: WorkloadReadWhileWriting, Runtime: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ops := res.OpsPerSec()
	if ops < 0.75e5 || ops > 1.5e5 {
		t.Fatalf("ops/s = %.0f, want ≈1.1e5", ops)
	}
	mbps := res.ThroughputMBps()
	if mbps < 6 || mbps > 14 {
		t.Fatalf("throughput = %.1f MB/s, want ≈8.7", mbps)
	}
}

func TestReadWhileWritingCollapsesUnderAttack(t *testing.T) {
	// Paper Table 2 at ≤10 cm: 0 MB/s, no I/O completes.
	r := newRig(t, Options{})
	b := NewBench(r.db, r.clock)
	if _, err := b.Run(BenchSpec{Workload: WorkloadFillRandom, Num: 2000}); err != nil {
		t.Fatal(err)
	}
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	res, err := b.Run(BenchSpec{Workload: WorkloadReadWhileWriting, Runtime: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ThroughputMBps(); got > 0.9 {
		t.Fatalf("throughput under attack = %.2f MB/s, want ≈0", got)
	}
}

func TestCrashAfterProlongedWALFailure(t *testing.T) {
	// Paper Table 3: RocksDB crashes after ≈81 s with a WAL sync failure.
	r := newRig(t, Options{WALStallLimit: 20 * time.Second, WALFlushBytes: 1})
	if err := r.db.Put([]byte("seed"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	attackStart := r.clock.Now()
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	var crashErr error
	for i := 0; i < 200; i++ {
		if err := r.db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			if crashed, cerr := r.db.Crashed(); crashed {
				crashErr = cerr
				break
			}
		}
	}
	if crashErr == nil {
		t.Fatal("database did not crash")
	}
	if !errors.Is(crashErr, ErrCrashed) {
		t.Fatalf("crash error = %v", crashErr)
	}
	ttc := r.db.CrashedAt().Sub(attackStart)
	if ttc < 20*time.Second || ttc > 40*time.Second {
		t.Fatalf("time to crash = %v, want ≈ stall limit", ttc)
	}
	// Everything fails fast after the crash.
	if err := r.db.Put([]byte("x"), []byte("y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("put after crash: %v", err)
	}
	if _, err := r.db.Get([]byte("seed")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("get after crash: %v", err)
	}
}

func TestRecoveryIfAttackStopsInTime(t *testing.T) {
	// The attack lifts after 5 s of virtual stall — within the stall
	// limit — so the blocked put completes and the database survives.
	r := newRig(t, Options{WALStallLimit: 60 * time.Second, WALFlushBytes: 1})
	r.db.SetRetryHook(func(stalled time.Duration) bool {
		if stalled >= 5*time.Second {
			r.disk.Drive().SetVibration(hdd.Quiet())
		}
		return true
	})
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	if err := r.db.Put([]byte("blocked"), []byte("v")); err != nil {
		t.Fatalf("put should have recovered: %v", err)
	}
	if crashed, _ := r.db.Crashed(); crashed {
		t.Fatal("database crashed despite recovery")
	}
	if r.db.Stats().WALErrors == 0 {
		t.Fatal("expected WAL retries during the stall")
	}
	v, err := r.db.Get([]byte("blocked"))
	if err != nil || string(v) != "v" {
		t.Fatalf("recovered value: %q %v", v, err)
	}
}

func TestCloseSemantics(t *testing.T) {
	r := newRig(t, Options{})
	r.db.Put([]byte("k"), []byte("v"))
	if err := r.db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.db.Put([]byte("k2"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if err := r.db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestMemtableOrderingAndTombstones(t *testing.T) {
	m := NewMemtable(1)
	m.Put([]byte("b"), []byte("2"), 1)
	m.Put([]byte("a"), []byte("1"), 2)
	m.Put([]byte("c"), []byte("3"), 3)
	m.Delete([]byte("b"), 4)
	entries := m.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if string(entries[0].Key) != "a" || string(entries[2].Key) != "c" {
		t.Fatal("entries out of order")
	}
	if entries[1].Value != nil {
		t.Fatal("tombstone lost")
	}
	v, found := m.Get([]byte("b"))
	if !found || v != nil {
		t.Fatal("tombstone should be found with nil value")
	}
}

func TestMemtableStaleWriteIgnored(t *testing.T) {
	m := NewMemtable(1)
	m.Put([]byte("k"), []byte("new"), 10)
	m.Put([]byte("k"), []byte("old"), 5)
	v, _ := m.Get([]byte("k"))
	if string(v) != "new" {
		t.Fatalf("stale write won: %q", v)
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	rec := walRecord{seq: 42, op: walOpPut, key: []byte("k"), value: []byte("v")}
	got, n, err := decodeWALRecord(rec.encode())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rec.encode()) || got.seq != 42 || string(got.key) != "k" || string(got.value) != "v" {
		t.Fatalf("round trip: %+v", got)
	}
	// Corrupt CRC.
	enc := rec.encode()
	enc[10] ^= 0xFF
	if _, _, err := decodeWALRecord(enc); err == nil {
		t.Fatal("corrupt record accepted")
	}
	// Zero fill reads as EOF.
	if _, _, err := decodeWALRecord(make([]byte, 64)); err == nil {
		t.Fatal("zero fill should not decode")
	}
}

func TestSSTableRoundTrip(t *testing.T) {
	r := newRig(t, Options{})
	entries := []Entry{
		{Key: []byte("a"), Value: []byte("1"), Seq: 1},
		{Key: []byte("b"), Value: nil, Seq: 2}, // tombstone
		{Key: []byte("c"), Value: []byte("3"), Seq: 3},
	}
	tbl, err := writeSSTable(r.fs, "sst-0-000001", entries, true)
	if err != nil {
		t.Fatal(err)
	}
	e, found, err := tbl.Get([]byte("b"))
	if err != nil || !found || e.Value != nil {
		t.Fatalf("tombstone get: %v %v %+v", err, found, e)
	}
	if _, found, _ := tbl.Get([]byte("zz")); found {
		t.Fatal("out-of-range key found")
	}
	reopened, err := openSSTable(r.fs, "sst-0-000001", false)
	if err != nil {
		t.Fatal(err)
	}
	e, found, err = reopened.Get([]byte("c"))
	if err != nil || !found || string(e.Value) != "3" {
		t.Fatalf("uncached get: %v %v %+v", err, found, e)
	}
	all, err := reopened.Entries()
	if err != nil || len(all) != 3 {
		t.Fatalf("entries: %v %d", err, len(all))
	}
	if tbl.Count() != 3 {
		t.Fatal("count mismatch")
	}
	min, max := tbl.KeyRange()
	if string(min) != "a" || string(max) != "c" {
		t.Fatalf("range %q..%q", min, max)
	}
}

func TestBloomFilterNoFalseNegatives(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add(benchKey(i, 16))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(benchKey(i, 16)) {
			t.Fatalf("false negative at %d", i)
		}
	}
	// False positive rate sanity: most absent keys excluded.
	fp := 0
	for i := 1000; i < 2000; i++ {
		if b.mayContain(benchKey(i, 16)) {
			fp++
		}
	}
	if fp > 200 {
		t.Fatalf("false positive rate too high: %d/1000", fp)
	}
}
