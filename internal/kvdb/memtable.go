// Package kvdb is an LSM-tree key-value store in the spirit of RocksDB,
// built on the simulated journaling filesystem. It exists so the paper's
// RocksDB experiments (Table 2's readwhilewriting degradation and Table 3's
// WAL-sync crash) run against a real storage engine: a skiplist memtable, a
// write-ahead log, sorted-table files with index and bloom filter, a flush
// path, and L0→L1 compaction.
package kvdb

import (
	"bytes"
	"math/rand"
)

const maxSkipHeight = 12

type skipNode struct {
	key   []byte
	value []byte // nil = tombstone
	seq   uint64
	next  [maxSkipHeight]*skipNode
}

// Memtable is an ordered in-memory write buffer. Later sequence numbers
// shadow earlier ones for the same key; deletes are tombstones.
type Memtable struct {
	head   *skipNode
	height int
	rng    *rand.Rand
	bytes  int
	count  int
}

// NewMemtable returns an empty memtable with a deterministic level
// generator.
func NewMemtable(seed int64) *Memtable {
	return &Memtable{
		head:   &skipNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// ApproximateBytes returns the payload bytes buffered.
func (m *Memtable) ApproximateBytes() int { return m.bytes }

// Len returns the number of live nodes (distinct key+seq insertions).
func (m *Memtable) Len() int { return m.count }

func (m *Memtable) randomHeight() int {
	h := 1
	for h < maxSkipHeight && m.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// Put inserts or overwrites key with value at sequence seq.
func (m *Memtable) Put(key, value []byte, seq uint64) {
	m.insert(key, append([]byte(nil), value...), seq)
}

// Delete inserts a tombstone for key at sequence seq.
func (m *Memtable) Delete(key []byte, seq uint64) {
	m.insert(key, nil, seq)
}

func (m *Memtable) insert(key, value []byte, seq uint64) {
	var update [maxSkipHeight]*skipNode
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && bytes.Compare(x.next[lvl].key, key) < 0 {
			x = x.next[lvl]
		}
		update[lvl] = x
	}
	// Exact key match: overwrite in place if the new write is newer.
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		if seq >= n.seq {
			m.bytes += len(value) - len(n.value)
			n.value = value
			n.seq = seq
		}
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			update[lvl] = m.head
		}
		m.height = h
	}
	n := &skipNode{key: append([]byte(nil), key...), value: value, seq: seq}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = update[lvl].next[lvl]
		update[lvl].next[lvl] = n
	}
	m.bytes += len(key) + len(value)
	m.count++
}

// Get returns the value for key. found=false means the memtable has no
// entry; found=true with nil value means a tombstone.
func (m *Memtable) Get(key []byte) (value []byte, found bool) {
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && bytes.Compare(x.next[lvl].key, key) < 0 {
			x = x.next[lvl]
		}
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

// Entry is one key/value/seq triple emitted by iteration.
type Entry struct {
	Key   []byte
	Value []byte // nil = tombstone
	Seq   uint64
}

// Entries returns all entries in key order.
func (m *Memtable) Entries() []Entry {
	out := make([]Entry, 0, m.count)
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, Entry{Key: n.key, Value: n.value, Seq: n.seq})
	}
	return out
}
