package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// TestOracleRandomOpsWithReopens drives the store with a random mix of
// puts, deletes, overwrites, flushes, and full crash-reopen cycles,
// mirrored against a map; the store must agree with the map at every
// checkpoint. This exercises memtable, WAL recovery, SSTables, and
// compaction together.
func TestOracleRandomOpsWithReopens(t *testing.T) {
	r := newRig(t, Options{MemtableBytes: 4 << 10, L0CompactTrigger: 3})
	db := r.db
	rng := rand.New(rand.NewSource(2024))
	model := make(map[string]string)

	key := func() string { return fmt.Sprintf("key-%03d", rng.Intn(300)) }
	verify := func(step int) {
		t.Helper()
		for k, want := range model {
			got, err := db.Get([]byte(k))
			if err != nil {
				t.Fatalf("step %d: get %q: %v", step, k, err)
			}
			if string(got) != want {
				t.Fatalf("step %d: %q = %q, model %q", step, k, got, want)
			}
		}
		// Spot-check absent keys.
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("key-%03d", rng.Intn(300))
			if _, ok := model[k]; ok {
				continue
			}
			if _, err := db.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("step %d: deleted/missing %q visible: %v", step, k, err)
			}
		}
		// The iterator view must match the model exactly.
		entries, err := db.Scan(nil, nil, 0)
		if err != nil {
			t.Fatalf("step %d: scan: %v", step, err)
		}
		if len(entries) != len(model) {
			t.Fatalf("step %d: scan %d keys, model %d", step, len(entries), len(model))
		}
		var prev []byte
		for _, e := range entries {
			if prev != nil && bytes.Compare(prev, e.Key) >= 0 {
				t.Fatalf("step %d: scan out of order", step)
			}
			prev = e.Key
			if model[string(e.Key)] != string(e.Value) {
				t.Fatalf("step %d: scan %q mismatch", step, e.Key)
			}
		}
	}

	const steps = 1200
	for i := 0; i < steps; i++ {
		switch op := rng.Intn(20); {
		case op < 12: // put / overwrite
			k := key()
			v := fmt.Sprintf("val-%d", i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("step %d: put: %v", i, err)
			}
			model[k] = v
		case op < 16: // delete (possibly absent)
			k := key()
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatalf("step %d: delete: %v", i, err)
			}
			delete(model, k)
		case op < 18: // explicit flush
			if err := db.Flush(); err != nil {
				t.Fatalf("step %d: flush: %v", i, err)
			}
		default: // crash + reopen
			if err := db.SyncWAL(); err != nil {
				t.Fatalf("step %d: sync: %v", i, err)
			}
			fs2, err := remount(r)
			if err != nil {
				t.Fatalf("step %d: remount: %v", i, err)
			}
			db, err = Open(fs2, r.clock, Options{MemtableBytes: 4 << 10, L0CompactTrigger: 3})
			if err != nil {
				t.Fatalf("step %d: reopen: %v", i, err)
			}
		}
		if i%200 == 199 {
			verify(i)
		}
	}
	verify(steps)
}
