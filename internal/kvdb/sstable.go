package kvdb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"deepnote/internal/jfs"
)

const sstMagic = 0x5353545F4E4F5445 // "SST_NOTE"

// bloomFilter is a fixed-k Bloom filter over keys.
type bloomFilter struct {
	bits []uint64
	n    uint32
}

func newBloom(count int) bloomFilter {
	bitsPer := 10
	n := uint32(count*bitsPer + 64)
	return bloomFilter{bits: make([]uint64, (n+63)/64), n: n}
}

func bloomHashes(key []byte) (uint32, uint32) {
	h := fnv.New64a()
	h.Write(key)
	v := h.Sum64()
	return uint32(v), uint32(v >> 32)
}

func (b *bloomFilter) add(key []byte) {
	h1, h2 := bloomHashes(key)
	for i := uint32(0); i < 4; i++ {
		bit := (h1 + i*h2) % b.n
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloomFilter) mayContain(key []byte) bool {
	if b.n == 0 {
		return true
	}
	h1, h2 := bloomHashes(key)
	for i := uint32(0); i < 4; i++ {
		bit := (h1 + i*h2) % b.n
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

type indexEntry struct {
	key    []byte
	offset int64
	length int
}

// SSTable is an immutable sorted table stored in one filesystem file. The
// in-memory index addresses every entry; the optional cache holds the whole
// file (page-cache semantics) so warm reads cost no disk I/O.
type SSTable struct {
	Name           string
	file           *jfs.File
	count          int
	minKey, maxKey []byte
	maxSeq         uint64
	bloom          bloomFilter
	index          []indexEntry
	cache          []byte
}

// MaxSeq returns the largest sequence number stored in the table; the
// engine restores its sequence counter from this at open time.
func (t *SSTable) MaxSeq() uint64 { return t.maxSeq }

func encodeEntry(e Entry) []byte {
	vlen := uint32(len(e.Value))
	if e.Value == nil {
		vlen = 0xFFFFFFFF // tombstone marker
	}
	out := make([]byte, 2+len(e.Key)+4+len(e.Value)+8)
	le := binary.LittleEndian
	le.PutUint16(out[0:], uint16(len(e.Key)))
	copy(out[2:], e.Key)
	le.PutUint32(out[2+len(e.Key):], vlen)
	copy(out[6+len(e.Key):], e.Value)
	le.PutUint64(out[6+len(e.Key)+len(e.Value):], e.Seq)
	return out
}

func decodeEntry(buf []byte) (Entry, int, error) {
	le := binary.LittleEndian
	if len(buf) < 2 {
		return Entry{}, 0, io.ErrUnexpectedEOF
	}
	klen := int(le.Uint16(buf[0:]))
	if len(buf) < 2+klen+4 {
		return Entry{}, 0, io.ErrUnexpectedEOF
	}
	key := append([]byte(nil), buf[2:2+klen]...)
	vlenRaw := le.Uint32(buf[2+klen:])
	tomb := vlenRaw == 0xFFFFFFFF
	vlen := 0
	if !tomb {
		vlen = int(vlenRaw)
	}
	if len(buf) < 2+klen+4+vlen+8 {
		return Entry{}, 0, io.ErrUnexpectedEOF
	}
	var value []byte
	if !tomb {
		value = append([]byte{}, buf[6+klen:6+klen+vlen]...)
	}
	seq := le.Uint64(buf[6+klen+vlen:])
	return Entry{Key: key, Value: value, Seq: seq}, 2 + klen + 4 + vlen + 8, nil
}

// writeSSTable persists sorted entries as a new table file. Entries must
// already be sorted by key with at most one entry per key.
func writeSSTable(fs *jfs.FS, name string, entries []Entry, cache bool) (*SSTable, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("kvdb: refusing to write empty table %q", name)
	}
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	header := make([]byte, 12)
	binary.LittleEndian.PutUint64(header[0:], sstMagic)
	binary.LittleEndian.PutUint32(header[8:], uint32(len(entries)))
	buf.Write(header)

	t := &SSTable{
		Name:   name,
		file:   f,
		count:  len(entries),
		minKey: entries[0].Key,
		maxKey: entries[len(entries)-1].Key,
		bloom:  newBloom(len(entries)),
	}
	for _, e := range entries {
		enc := encodeEntry(e)
		t.index = append(t.index, indexEntry{key: e.Key, offset: int64(buf.Len()), length: len(enc)})
		t.bloom.add(e.Key)
		if e.Seq > t.maxSeq {
			t.maxSeq = e.Seq
		}
		buf.Write(enc)
	}
	raw := buf.Bytes()
	if _, err := f.WriteAt(raw, 0); err != nil {
		// Clean up the partial file so the directory stays sane.
		_ = fs.Remove(name)
		return nil, fmt.Errorf("kvdb: writing table %q: %w", name, err)
	}
	if cache {
		t.cache = raw
	}
	return t, nil
}

// openSSTable loads an existing table, rebuilding index and bloom filter.
func openSSTable(fs *jfs.FS, name string, cache bool) (*SSTable, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, f.Size())
	if _, err := f.ReadAt(raw, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("kvdb: reading table %q: %w", name, err)
	}
	if len(raw) < 12 || binary.LittleEndian.Uint64(raw[0:]) != sstMagic {
		return nil, fmt.Errorf("kvdb: %q is not a table file", name)
	}
	count := int(binary.LittleEndian.Uint32(raw[8:]))
	t := &SSTable{Name: name, file: f, count: count, bloom: newBloom(count)}
	pos := 12
	for i := 0; i < count; i++ {
		e, n, err := decodeEntry(raw[pos:])
		if err != nil {
			return nil, fmt.Errorf("kvdb: table %q entry %d: %w", name, i, err)
		}
		t.index = append(t.index, indexEntry{key: e.Key, offset: int64(pos), length: n})
		t.bloom.add(e.Key)
		if i == 0 {
			t.minKey = e.Key
		}
		t.maxKey = e.Key
		if e.Seq > t.maxSeq {
			t.maxSeq = e.Seq
		}
		pos += n
	}
	if cache {
		t.cache = raw
	}
	return t, nil
}

// Count returns the number of entries.
func (t *SSTable) Count() int { return t.count }

// KeyRange returns the table's [min, max] keys.
func (t *SSTable) KeyRange() (min, max []byte) { return t.minKey, t.maxKey }

// Get looks up key. found=false means not in this table. A found entry
// with nil Value is a tombstone.
func (t *SSTable) Get(key []byte) (Entry, bool, error) {
	if bytes.Compare(key, t.minKey) < 0 || bytes.Compare(key, t.maxKey) > 0 {
		return Entry{}, false, nil
	}
	if !t.bloom.mayContain(key) {
		return Entry{}, false, nil
	}
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].key, key) >= 0
	})
	if i >= len(t.index) || !bytes.Equal(t.index[i].key, key) {
		return Entry{}, false, nil
	}
	ie := t.index[i]
	var raw []byte
	if t.cache != nil {
		raw = t.cache[ie.offset : ie.offset+int64(ie.length)]
	} else {
		raw = make([]byte, ie.length)
		if _, err := t.file.ReadAt(raw, ie.offset); err != nil && err != io.EOF {
			return Entry{}, false, fmt.Errorf("kvdb: table %q read: %w", t.Name, err)
		}
	}
	e, _, err := decodeEntry(raw)
	if err != nil {
		return Entry{}, false, err
	}
	return e, true, nil
}

// Entries streams the whole table (used by compaction and iterators).
func (t *SSTable) Entries() ([]Entry, error) {
	var raw []byte
	if t.cache != nil {
		raw = t.cache
	} else {
		raw = make([]byte, t.file.Size())
		if _, err := t.file.ReadAt(raw, 0); err != nil && err != io.EOF {
			return nil, fmt.Errorf("kvdb: table %q read: %w", t.Name, err)
		}
	}
	out := make([]Entry, 0, t.count)
	pos := 12
	for i := 0; i < t.count; i++ {
		e, n, err := decodeEntry(raw[pos:])
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		pos += n
	}
	return out, nil
}
