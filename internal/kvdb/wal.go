package kvdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"deepnote/internal/jfs"
)

// WAL record op codes.
const (
	walOpPut    = 1
	walOpDelete = 2
)

// walRecord is the wire format: length-prefixed, CRC-protected.
//
//	u32 payloadLen | u32 crc | payload
//	payload: u64 seq | u8 op | u16 keyLen | key | u32 valLen | val
type walRecord struct {
	seq   uint64
	op    byte
	key   []byte
	value []byte
}

func (r walRecord) encode() []byte {
	payload := make([]byte, 8+1+2+len(r.key)+4+len(r.value))
	le := binary.LittleEndian
	le.PutUint64(payload[0:], r.seq)
	payload[8] = r.op
	le.PutUint16(payload[9:], uint16(len(r.key)))
	copy(payload[11:], r.key)
	le.PutUint32(payload[11+len(r.key):], uint32(len(r.value)))
	copy(payload[15+len(r.key):], r.value)

	out := make([]byte, 8+len(payload))
	le.PutUint32(out[0:], uint32(len(payload)))
	le.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

var errWALCorrupt = errors.New("kvdb: corrupt WAL record")

func decodeWALRecord(buf []byte) (rec walRecord, consumed int, err error) {
	le := binary.LittleEndian
	if len(buf) < 8 {
		return rec, 0, io.ErrUnexpectedEOF
	}
	plen := int(le.Uint32(buf[0:]))
	if plen == 0 {
		// Zero fill: end of log.
		return rec, 0, io.EOF
	}
	crc := le.Uint32(buf[4:])
	if len(buf) < 8+plen {
		return rec, 0, io.ErrUnexpectedEOF
	}
	payload := buf[8 : 8+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return rec, 0, errWALCorrupt
	}
	if plen < 15 {
		return rec, 0, errWALCorrupt
	}
	rec.seq = le.Uint64(payload[0:])
	rec.op = payload[8]
	klen := int(le.Uint16(payload[9:]))
	if 11+klen+4 > plen {
		return rec, 0, errWALCorrupt
	}
	rec.key = append([]byte(nil), payload[11:11+klen]...)
	vlen := int(le.Uint32(payload[11+klen:]))
	if 15+klen+vlen > plen {
		return rec, 0, errWALCorrupt
	}
	rec.value = append([]byte(nil), payload[15+klen:15+klen+vlen]...)
	return rec, 8 + plen, nil
}

// wal is the write-ahead log: records buffer in memory and flush to the
// backing file when the buffer fills (or on explicit flush). The flush is
// the synchronous, attack-exposed part of the write path.
type wal struct {
	file    *jfs.File
	buf     []byte
	filePos int64 // flushed bytes
	flushAt int   // buffer size that triggers a flush
}

func newWAL(f *jfs.File, flushAt int) *wal {
	return &wal{file: f, filePos: f.Size(), flushAt: flushAt}
}

// append buffers a record and reports whether the buffer now needs a flush.
func (w *wal) append(rec walRecord) bool {
	w.buf = append(w.buf, rec.encode()...)
	return len(w.buf) >= w.flushAt
}

// flush writes the buffered records to the file. On error the buffer is
// retained so the flush can be retried.
func (w *wal) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	n, err := w.file.WriteAt(w.buf, w.filePos)
	if err != nil {
		// Keep the unwritten tail for retry; bytes reported written are
		// assumed durable in order.
		w.filePos += int64(n)
		w.buf = w.buf[n:]
		return fmt.Errorf("kvdb: wal flush: %w", err)
	}
	w.filePos += int64(n)
	w.buf = w.buf[:0]
	return nil
}

// sync flushes the buffer and forces a filesystem commit.
func (w *wal) sync() error {
	if err := w.flush(); err != nil {
		return err
	}
	if err := w.file.Sync(); err != nil {
		return fmt.Errorf("kvdb: wal sync: %w", err)
	}
	return nil
}

// pending returns the unflushed byte count.
func (w *wal) pending() int { return len(w.buf) }

// replayWAL reads all valid records from a WAL file, stopping cleanly at
// zero fill, EOF, or the first corrupt record (torn tail).
func replayWAL(f *jfs.File) ([]walRecord, error) {
	size := f.Size()
	if size == 0 {
		return nil, nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("kvdb: reading wal: %w", err)
	}
	var recs []walRecord
	pos := 0
	for pos < len(buf) {
		rec, n, err := decodeWALRecord(buf[pos:])
		if err != nil {
			break // torn or zero tail: recovery keeps the valid prefix
		}
		recs = append(recs, rec)
		pos += n
	}
	return recs, nil
}
