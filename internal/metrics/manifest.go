package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"

	"deepnote/internal/report"
)

// Schema identifiers; bump only on breaking layout changes.
const (
	SnapshotSchema = "deepnote-metrics/v1"
	ManifestSchema = "deepnote-manifest/v1"
)

// HistogramBucket is one populated log bucket: Count observations with
// value ≤ LE (and greater than the previous bucket's LE).
type HistogramBucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's frozen state.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	// P50 and P99 are nearest-rank quantiles resolved to log-bucket upper
	// bounds; Max is exact.
	P50     int64             `json:"p50"`
	P99     int64             `json:"p99"`
	Max     int64             `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot is a registry's frozen state. encoding/json marshals map keys
// sorted, so equal registries produce byte-identical documents.
type Snapshot struct {
	Schema string `json:"schema"`
	// VirtualSeconds is the virtual time elapsed since a clock was
	// attached with SetClock (0 when no clock was attached).
	VirtualSeconds float64                      `json:"virtual_seconds"`
	Counters       map[string]int64             `json:"counters"`
	Gauges         map[string]float64           `json:"gauges"`
	Histograms     map[string]HistogramSnapshot `json:"histograms"`
}

// Layer extracts the layer prefix of a metric name ("hdd.reads" → "hdd";
// names without a dot are their own layer).
func Layer(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// Layers returns the distinct layer prefixes present in the snapshot that
// have at least one non-zero counter, sorted.
func (s Snapshot) Layers() []string {
	set := map[string]bool{}
	for name, v := range s.Counters {
		if v != 0 {
			set[Layer(name)] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// LayerTable renders the per-layer summary: for each layer, how many
// counter series it published, the total event count, the error subtotal
// (counters whose name contains "err"), and histogram sample counts.
func (s Snapshot) LayerTable() *report.Table {
	type agg struct {
		series, events, errors, samples int64
	}
	layers := map[string]*agg{}
	get := func(name string) *agg {
		l := Layer(name)
		a, ok := layers[l]
		if !ok {
			a = &agg{}
			layers[l] = a
		}
		return a
	}
	for name, v := range s.Counters {
		a := get(name)
		a.series++
		a.events += v
		if strings.Contains(name, "err") || strings.Contains(name, "fail") ||
			strings.Contains(name, "corrupt") || strings.Contains(name, "abort") {
			a.errors += v
		}
	}
	for name, h := range s.Histograms {
		get(name).samples += h.Count
	}
	for name := range s.Gauges {
		get(name)
	}
	names := make([]string, 0, len(layers))
	for l := range layers {
		names = append(names, l)
	}
	sort.Strings(names)

	tb := report.NewTable("Metrics by layer",
		"Layer", "Counters", "Events", "Errors", "Hist samples")
	for _, l := range names {
		a := layers[l]
		tb.AddRow(l,
			fmt.Sprintf("%d", a.series),
			fmt.Sprintf("%d", a.events),
			fmt.Sprintf("%d", a.errors),
			fmt.Sprintf("%d", a.samples))
	}
	return tb
}

// Manifest is the run record written next to a metrics snapshot: enough to
// re-run the experiment and to attribute the numbers to a build.
type Manifest struct {
	Schema string `json:"schema"`
	// Command and Args are the deepnote subcommand and its raw CLI args.
	Command string   `json:"command"`
	Args    []string `json:"args"`
	// Seed and Workers pin the determinism inputs.
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
	// GitDescribe identifies the source tree ("unknown" outside a repo).
	GitDescribe string `json:"git_describe"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Metrics is the final registry snapshot.
	Metrics Snapshot `json:"metrics"`
}

// NewManifest assembles a manifest around a snapshot, stamping the build
// identity.
func NewManifest(command string, args []string, seed int64, workers int, snap Snapshot) Manifest {
	if args == nil {
		args = []string{}
	}
	return Manifest{
		Schema:      ManifestSchema,
		Command:     command,
		Args:        args,
		Seed:        seed,
		Workers:     workers,
		GitDescribe: GitDescribe(),
		GoVersion:   runtime.Version(),
		Metrics:     snap,
	}
}

// GitDescribe returns `git describe --always --dirty` for the working
// directory, or "unknown" when git or the repository is unavailable.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// WriteSnapshot marshals the snapshot as indented JSON to path.
func WriteSnapshot(path string, s Snapshot) error {
	return writeJSON(path, s)
}

// WriteManifest marshals the manifest as indented JSON to path.
func WriteManifest(path string, m Manifest) error {
	return writeJSON(path, m)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: marshaling %s: %w", path, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
