// Package metrics is the simulation's observability spine: a registry of
// named counters, gauges, and fixed-log-bucket histograms that every layer
// (hdd, blockdev, fio, jfs, kvdb, osmodel, attack, experiment) publishes
// into, plus run-manifest and snapshot writers that persist the final state
// as schema-stable JSON.
//
// Three properties make the registry safe to thread through the parallel
// experiment engine:
//
//   - Nil-safety: every method is a no-op on a nil *Registry (and on the
//     nil handles a nil registry returns), so instrumented code never
//     branches on "is observability enabled".
//   - Determinism: the registry never touches the virtual clock or any
//     simulation RNG, so a run's results are bit-identical with metrics on
//     or off.
//   - Commutativity: counters merge by sum, gauges by max, histograms by
//     per-bucket sum — all order-independent — so a grid fanned over
//     internal/parallel workers produces the same snapshot at any worker
//     count.
package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deepnote/internal/simclock"
)

// Counter is a monotonically increasing sum.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current sum (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-known value with max-merge semantics: concurrent or
// repeated publications keep the largest value seen, which is the only
// order-independent choice when parallel workers publish the same name.
type Gauge struct {
	mu  sync.Mutex
	set bool
	v   float64
}

// SetMax raises the gauge to v if v is larger than the current value (or
// the gauge is unset). Safe on a nil receiver.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if !g.set || v > g.v {
		g.v, g.set = v, true
	}
	g.mu.Unlock()
}

// Value returns the gauge value (0 on a nil or unset receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// histBuckets is the fixed log-2 bucket count: bucket 0 holds values ≤ 0,
// bucket i (1..64) holds values v with bits.Len64(v) == i, i.e.
// v ∈ [2^(i-1), 2^i). Every histogram shares this layout, which is what
// makes merges a per-bucket sum.
const histBuckets = 65

// Histogram is a fixed log-bucket distribution of int64 observations
// (typically latencies in nanoseconds).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return int64(^uint64(0) >> 1)
	}
	return (int64(1) << i) - 1
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIndex(v)].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns the nearest-rank quantile as the upper bound of the
// log bucket containing that rank (the true max for q covering the last
// observation). q outside (0, 1] is clamped.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = 1 / float64(n)
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if cum == n {
				// The rank falls in the last populated bucket; the
				// tracked max is a tighter bound than 2^i - 1.
				return h.max.Load()
			}
			return bucketUpper(i)
		}
	}
	return h.max.Load()
}

// Registry is a named collection of counters, gauges, and histograms.
// A nil *Registry is a valid, do-nothing registry: all methods no-op, so
// instrumented layers publish unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	clock    simclock.Clock
	origin   time.Time
	hasClock bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetClock attaches a virtual clock; snapshots taken afterwards stamp the
// virtual time elapsed since attachment. Safe on a nil receiver.
func (r *Registry) SetClock(c simclock.Clock) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.clock, r.origin, r.hasClock = c, c.Now(), true
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Add is shorthand for Counter(name).Add(n).
func (r *Registry) Add(name string, n int64) { r.Counter(name).Add(n) }

// MaxGauge is shorthand for Gauge(name).SetMax(v).
func (r *Registry) MaxGauge(name string, v float64) { r.Gauge(name).SetMax(v) }

// Observe is shorthand for Histogram(name).Observe(v).
func (r *Registry) Observe(name string, v int64) { r.Histogram(name).Observe(v) }

// Merge folds src into r: counters sum, gauges take the max, histograms
// add per-bucket. Both registries may be nil. The merge is commutative,
// so per-worker registries fold to the same result in any order.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(src.gauges))
	for name, g := range src.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for name, h := range src.hists {
		hists[name] = h
	}
	src.mu.Unlock()

	for name, v := range counters {
		r.Add(name, v)
	}
	for name, v := range gauges {
		r.MaxGauge(name, v)
	}
	for name, h := range hists {
		dst := r.Histogram(name)
		if dst == nil {
			continue
		}
		dst.count.Add(h.count.Load())
		dst.sum.Add(h.sum.Load())
		if m := h.max.Load(); m > dst.max.Load() {
			dst.max.Store(m)
		}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n != 0 {
				dst.buckets[i].Add(n)
			}
		}
	}
}

// Snapshot captures the registry's current state in a deterministic,
// schema-stable form: map keys marshal sorted, histogram buckets list only
// populated buckets in ascending order.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Schema:     SnapshotSchema,
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	if r.hasClock {
		snap.VirtualSeconds = r.clock.Now().Sub(r.origin).Seconds()
	}
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		hs := HistogramSnapshot{
			Count: h.count.Load(),
			Sum:   h.sum.Load(),
			Max:   h.max.Load(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
		}
		if hs.Count > 0 {
			hs.Mean = float64(hs.Sum) / float64(hs.Count)
		}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, HistogramBucket{LE: bucketUpper(i), Count: n})
			}
		}
		sort.Slice(hs.Buckets, func(a, b int) bool { return hs.Buckets[a].LE < hs.Buckets[b].LE })
		snap.Histograms[name] = hs
	}
	return snap
}
