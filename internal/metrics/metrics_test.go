package metrics

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"deepnote/internal/simclock"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add("hdd.reads", 3)
	r.MaxGauge("hdd.temp", 40)
	r.Observe("hdd.lat", 100)
	r.SetClock(simclock.NewVirtual())
	r.Merge(NewRegistry())
	r.Counter("x").Add(1)
	r.Gauge("x").SetMax(1)
	r.Histogram("x").Observe(1)
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || snap.Schema != SnapshotSchema {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	r.Add("a.ops", 2)
	r.Add("a.ops", 3)
	if got := r.Counter("a.ops").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.MaxGauge("a.peak", 2)
	r.MaxGauge("a.peak", 7)
	r.MaxGauge("a.peak", 4)
	if got := r.Gauge("a.peak").Value(); got != 7 {
		t.Fatalf("gauge = %g, want 7 (max-merge)", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d", got)
	}
	// Values 1..1000: p50 rank 500 lands in bucket (255,511]; log-bucket
	// quantiles resolve to the bucket's upper bound.
	if got := h.Quantile(0.5); got != 511 {
		t.Fatalf("p50 = %d, want 511", got)
	}
	// p99 rank 990 lands in the last populated bucket (513..1000), whose
	// bound is tightened to the exact max.
	if got := h.Quantile(0.99); got != 1000 {
		t.Fatalf("p99 = %d, want 1000", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("p100 = %d, want exact max 1000", got)
	}
}

func TestHistogramMergeCommutes(t *testing.T) {
	build := func(vals ...int64) *Registry {
		r := NewRegistry()
		for _, v := range vals {
			r.Observe("lat", v)
		}
		return r
	}
	a := build(1, 10, 100)
	b := build(1000, 5)
	ab := NewRegistry()
	ab.Merge(a)
	ab.Merge(b)
	ba := NewRegistry()
	ba.Merge(build(1000, 5))
	ba.Merge(build(1, 10, 100))
	sa, _ := json.Marshal(ab.Snapshot())
	sb, _ := json.Marshal(ba.Snapshot())
	if string(sa) != string(sb) {
		t.Fatalf("merge order changed snapshot:\n%s\n%s", sa, sb)
	}
	h := ab.Histogram("lat")
	if h.Count() != 5 || h.Quantile(1) != 1000 {
		t.Fatalf("merged count=%d max=%d", h.Count(), h.Quantile(1))
	}
}

func TestMergeSumsCountersAndMaxesGauges(t *testing.T) {
	a := NewRegistry()
	a.Add("x.ops", 2)
	a.MaxGauge("x.peak", 3)
	b := NewRegistry()
	b.Add("x.ops", 5)
	b.MaxGauge("x.peak", 1)
	a.Merge(b)
	if got := a.Counter("x.ops").Value(); got != 7 {
		t.Fatalf("merged counter = %d", got)
	}
	if got := a.Gauge("x.peak").Value(); got != 3 {
		t.Fatalf("merged gauge = %g", got)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		r.Add("b.ops", 1)
		r.Add("a.ops", 2)
		r.MaxGauge("c.peak", 1.5)
		r.Observe("a.lat", 100)
		r.Observe("a.lat", 3)
		return r
	}
	j1, err := json.Marshal(mk().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(mk().Snapshot())
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", j1, j2)
	}
	var round Snapshot
	if err := json.Unmarshal(j1, &round); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if round.Counters["a.ops"] != 2 || round.Histograms["a.lat"].Count != 2 {
		t.Fatalf("round-trip lost data: %+v", round)
	}
}

func TestConcurrentPublishersConverge(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("p.ops", 1)
				r.Observe("p.lat", int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("p.ops").Value(); got != 8000 {
		t.Fatalf("concurrent adds lost updates: %d", got)
	}
	if got := r.Histogram("p.lat").Count(); got != 8000 {
		t.Fatalf("concurrent observes lost updates: %d", got)
	}
}

func TestVirtualClockStamp(t *testing.T) {
	clk := simclock.NewVirtual()
	r := NewRegistry()
	r.SetClock(clk)
	clk.Advance(90 * time.Second)
	snap := r.Snapshot()
	if snap.VirtualSeconds != 90 {
		t.Fatalf("virtual_seconds = %g, want 90", snap.VirtualSeconds)
	}
}

func TestLayersAndTable(t *testing.T) {
	r := NewRegistry()
	r.Add("hdd.reads", 10)
	r.Add("hdd.read_errors", 2)
	r.Add("fio.ops", 5)
	r.Add("jfs.commit_failures", 1)
	r.Add("idle.nothing", 0)
	r.Observe("fio.lat_ns", 100)
	snap := r.Snapshot()
	layers := snap.Layers()
	want := []string{"fio", "hdd", "jfs"}
	if len(layers) != len(want) {
		t.Fatalf("layers = %v, want %v", layers, want)
	}
	for i := range want {
		if layers[i] != want[i] {
			t.Fatalf("layers = %v, want %v", layers, want)
		}
	}
	out := snap.LayerTable().String()
	for _, needle := range []string{"hdd", "fio", "jfs", "Errors"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("layer table missing %q:\n%s", needle, out)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Add("hdd.reads", 1)
	m := NewManifest("sweep", []string{"-scenario", "2"}, 7, 4, r.Snapshot())
	if m.Schema != ManifestSchema || m.GitDescribe == "" || m.GoVersion == "" {
		t.Fatalf("manifest incomplete: %+v", m)
	}
	path := t.TempDir() + "/manifest.json"
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var round Manifest
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round.Command != "sweep" || round.Seed != 7 || round.Workers != 4 ||
		round.Metrics.Counters["hdd.reads"] != 1 {
		t.Fatalf("manifest round-trip mismatch: %+v", round)
	}
}
