// Package netstore models a small networked object store running on the
// victim drive: GET and PUT requests served over a network with realistic
// round-trip jitter and a server-side timeout. It exists to realize the
// paper's §3 reconnaissance premise — an attacker who cannot see the
// drive can still *remotely* observe request latencies of "online
// applications that use the target data center" and use them to find the
// vulnerable frequencies.
package netstore

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/simclock"
)

// Errors reported to clients.
var (
	// ErrTimeout means the server gave up on the backing store.
	ErrTimeout = errors.New("netstore: request timed out")
	// ErrBadRequest reports malformed requests.
	ErrBadRequest = errors.New("netstore: bad request")
)

// Config tunes the service.
type Config struct {
	// NetRTT is the mean network round-trip added to every request
	// (default 2 ms).
	NetRTT time.Duration
	// RTTJitter is the uniform ± jitter on the RTT (default 0.5 ms).
	RTTJitter time.Duration
	// Timeout bounds a request's storage time before the server answers
	// 503 (default 5 s, a typical load-balancer budget).
	Timeout time.Duration
	// ObjectSize is the fixed object size in bytes (default 64 KiB).
	ObjectSize int
	// Objects is the number of addressable objects (default 1024).
	Objects int
	// Seed drives the jitter.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.NetRTT <= 0 {
		c.NetRTT = 2 * time.Millisecond
	}
	if c.RTTJitter <= 0 {
		c.RTTJitter = 500 * time.Microsecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.ObjectSize <= 0 {
		c.ObjectSize = 64 << 10
	}
	if c.Objects <= 0 {
		c.Objects = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Op is the request type.
type Op int

// Request operations.
const (
	Get Op = iota
	Put
)

// String names the op.
func (o Op) String() string {
	if o == Put {
		return "PUT"
	}
	return "GET"
}

// Response is what a remote client observes: latency and status only.
type Response struct {
	// Latency is the client-observed round-trip time.
	Latency time.Duration
	// Err is nil on success; a remote client sees only the class of
	// failure (timeout vs. error), never drive internals.
	Err error
}

// Server is the storage service.
type Server struct {
	dev   blockdev.Device
	clock simclock.Clock
	cfg   Config
	rng   *rand.Rand

	// Stats
	Requests, Timeouts, Errors int64
}

// NewServer starts a service over a device.
func NewServer(dev blockdev.Device, clock simclock.Clock, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{dev: dev, clock: clock, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// rtt samples one network round trip.
func (s *Server) rtt() time.Duration {
	j := time.Duration(s.rng.Int63n(int64(2*s.cfg.RTTJitter))) - s.cfg.RTTJitter
	return s.cfg.NetRTT + j
}

// Handle serves one request against the backing store and returns the
// client-observed response. The storage operation is bounded by the
// server's timeout: a drive that stops responding turns into 503s, which
// is exactly the externally visible signal the attacker keys on.
func (s *Server) Handle(op Op, objectID int) Response {
	s.Requests++
	if objectID < 0 || objectID >= s.cfg.Objects {
		s.Errors++
		return Response{Err: fmt.Errorf("%w: object %d", ErrBadRequest, objectID)}
	}
	start := s.clock.Now()
	net := s.rtt()
	s.clock.Sleep(net / 2) // request flight

	buf := make([]byte, s.cfg.ObjectSize)
	off := int64(objectID) * int64(s.cfg.ObjectSize)
	var err error
	if op == Put {
		for i := range buf {
			buf[i] = byte(objectID + i)
		}
		_, err = s.dev.WriteAt(buf, off)
	} else {
		_, err = s.dev.ReadAt(buf, off)
	}
	storageTime := s.clock.Now().Sub(start) - net/2

	s.clock.Sleep(net / 2) // response flight
	resp := Response{Latency: s.clock.Now().Sub(start)}
	switch {
	case err != nil && storageTime >= s.cfg.Timeout:
		s.Timeouts++
		resp.Err = ErrTimeout
	case err != nil:
		s.Errors++
		resp.Err = fmt.Errorf("netstore: internal storage error")
	case storageTime >= s.cfg.Timeout:
		// Completed, but past the budget: the client already gave up.
		s.Timeouts++
		resp.Err = ErrTimeout
	}
	return resp
}

// Preload writes every object once so GETs hit allocated storage.
func (s *Server) Preload() error {
	for i := 0; i < s.cfg.Objects; i++ {
		if r := s.Handle(Put, i); r.Err != nil {
			return fmt.Errorf("netstore: preload object %d: %w", i, r.Err)
		}
	}
	return nil
}

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }
