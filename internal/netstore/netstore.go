// Package netstore models a small networked object store running on the
// victim drive: GET and PUT requests served over a network with realistic
// round-trip jitter and a server-side timeout. It exists to realize the
// paper's §3 reconnaissance premise — an attacker who cannot see the
// drive can still *remotely* observe request latencies of "online
// applications that use the target data center" and use them to find the
// vulnerable frequencies.
package netstore

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// Errors reported to clients.
var (
	// ErrTimeout means the server gave up on the backing store.
	ErrTimeout = errors.New("netstore: request timed out")
	// ErrBadRequest reports malformed requests.
	ErrBadRequest = errors.New("netstore: bad request")
	// ErrUnavailable is the circuit breaker's fast-fail: the server sheds
	// the request without touching the backing store.
	ErrUnavailable = errors.New("netstore: service unavailable (circuit open)")
)

// Config tunes the service.
type Config struct {
	// NetRTT is the mean network round-trip added to every request
	// (default 2 ms).
	NetRTT time.Duration
	// RTTJitter is the uniform ± jitter on the RTT (default 0.5 ms).
	RTTJitter time.Duration
	// Timeout bounds a request's storage time before the server answers
	// 503 (default 5 s, a typical load-balancer budget).
	Timeout time.Duration
	// ObjectSize is the fixed object size in bytes (default 64 KiB).
	ObjectSize int
	// Objects is the number of addressable objects (default 1024).
	Objects int
	// Seed drives the jitter.
	Seed int64
	// Resilience enables the hardened request path; the zero value keeps
	// the bare behavior (including its exact RNG draw sequence).
	Resilience ResilienceConfig
}

// ResilienceConfig is the hardened request path: storage retries within the
// request's timeout budget, hedged GETs, and a circuit breaker that sheds
// load while the backing store is unresponsive. All waiting is charged to
// the virtual clock and no extra RNG draws happen, so enabling resilience
// never perturbs the jitter stream.
type ResilienceConfig struct {
	// Enabled turns the hardened path on.
	Enabled bool
	// MaxRetries bounds storage re-attempts per request (default 2).
	MaxRetries int
	// RetryBackoff is the sleep before the first retry, doubling each
	// retry (default 50 ms).
	RetryBackoff time.Duration
	// HedgeAfter hedges a GET whose first storage attempt failed or ran
	// longer than this with one immediate second attempt (default 100 ms).
	HedgeAfter time.Duration
	// BreakerThreshold opens the circuit after this many consecutive
	// failed requests (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long the circuit stays open before a
	// half-open probe is allowed through (default 10 s).
	BreakerCooldown time.Duration
}

func (r ResilienceConfig) withDefaults() ResilienceConfig {
	if !r.Enabled {
		return r
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = 2
	}
	if r.RetryBackoff <= 0 {
		r.RetryBackoff = 50 * time.Millisecond
	}
	if r.HedgeAfter <= 0 {
		r.HedgeAfter = 100 * time.Millisecond
	}
	if r.BreakerThreshold <= 0 {
		r.BreakerThreshold = 5
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = 10 * time.Second
	}
	return r
}

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (b breakerState) String() string {
	switch b {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func (c Config) withDefaults() Config {
	if c.NetRTT <= 0 {
		c.NetRTT = 2 * time.Millisecond
	}
	if c.RTTJitter <= 0 {
		c.RTTJitter = 500 * time.Microsecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.ObjectSize <= 0 {
		c.ObjectSize = 64 << 10
	}
	if c.Objects <= 0 {
		c.Objects = 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Resilience = c.Resilience.withDefaults()
	return c
}

// Op is the request type.
type Op int

// Request operations.
const (
	Get Op = iota
	Put
)

// String names the op.
func (o Op) String() string {
	if o == Put {
		return "PUT"
	}
	return "GET"
}

// Response is what a remote client observes: latency and status only.
type Response struct {
	// Latency is the client-observed round-trip time.
	Latency time.Duration
	// Err is nil on success; a remote client sees only the class of
	// failure (timeout vs. error), never drive internals.
	Err error
}

// Server is the storage service.
type Server struct {
	dev   blockdev.Device
	clock simclock.Clock
	cfg   Config
	rng   *rand.Rand
	// scratch is the reused request buffer; HandleObjectShared serves
	// GETs out of it so the hot path never allocates.
	scratch []byte

	// Circuit breaker state (resilience only).
	breaker  breakerState
	openedAt time.Time
	failStrk int

	// Stats
	Requests, Timeouts, Errors int64
	// Resilience stats: storage re-attempts, hedged GETs, requests saved
	// by a retry or hedge, breaker transitions, and shed requests.
	Retries, Hedges, Recovered  int64
	BreakerOpens, BreakerCloses int64
	FastFails                   int64
}

// NewServer starts a service over a device.
func NewServer(dev blockdev.Device, clock simclock.Clock, cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{dev: dev, clock: clock, cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)), scratch: make([]byte, cfg.ObjectSize)}
}

// rtt samples one network round trip.
func (s *Server) rtt() time.Duration {
	j := time.Duration(s.rng.Int63n(int64(2*s.cfg.RTTJitter))) - s.cfg.RTTJitter
	return s.cfg.NetRTT + j
}

// Handle serves one request against the backing store and returns the
// client-observed response. The storage operation is bounded by the
// server's timeout: a drive that stops responding turns into 503s, which
// is exactly the externally visible signal the attacker keys on. With
// Config.Resilience enabled, failed attempts are retried (and GETs hedged)
// inside the timeout budget, and a circuit breaker sheds requests while
// the store is down.
//
// Handle is the payload-less form: PUTs store a fixed per-object pattern
// and GETs discard the bytes read. Callers that care about object
// contents (e.g. an erasure-coded store carrying real shards) use
// HandleObject.
func (s *Server) Handle(op Op, objectID int) Response {
	_, resp := s.HandleObjectShared(op, objectID, nil)
	return resp
}

// HandleObject is Handle with an explicit payload. For PUTs, data is
// stored (zero-padded to the object size; nil keeps Handle's fixed
// pattern). For successful GETs the object's bytes are returned in a
// fresh buffer the caller owns. Timing, retry behavior, and the jitter
// RNG draw sequence are identical to Handle.
func (s *Server) HandleObject(op Op, objectID int, data []byte) ([]byte, Response) {
	got, resp := s.HandleObjectShared(op, objectID, data)
	if got != nil {
		got = append([]byte(nil), got...)
	}
	return got, resp
}

// HandleObjectShared is HandleObject without the defensive copy: a
// successful GET returns a slice aliasing the server's internal request
// buffer, valid only until the next request on this server. It is the
// zero-allocation path the cluster serving engine runs millions of
// operations through; PUTs whose payload is exactly the object size are
// written straight from the caller's slice with no staging copy.
func (s *Server) HandleObjectShared(op Op, objectID int, data []byte) ([]byte, Response) {
	s.Requests++
	if objectID < 0 || objectID >= s.cfg.Objects {
		s.Errors++
		return nil, Response{Err: fmt.Errorf("%w: object %d", ErrBadRequest, objectID)}
	}
	if op == Put && len(data) > s.cfg.ObjectSize {
		s.Errors++
		return nil, Response{Err: fmt.Errorf("%w: payload %d exceeds object size %d",
			ErrBadRequest, len(data), s.cfg.ObjectSize)}
	}
	start := s.clock.Now()
	net := s.rtt()
	s.clock.Sleep(net / 2) // request flight

	res := s.cfg.Resilience
	if res.Enabled && s.breaker == breakerOpen {
		if s.clock.Now().Sub(s.openedAt) < res.BreakerCooldown {
			s.FastFails++
			s.clock.Sleep(net / 2)
			return nil, Response{Latency: s.clock.Now().Sub(start), Err: ErrUnavailable}
		}
		// Cooldown over: let this request through as the probe.
		s.breaker = breakerHalfOpen
	}

	buf := s.scratch
	off := int64(objectID) * int64(s.cfg.ObjectSize)
	if op == Put {
		switch {
		case data == nil:
			for i := range buf {
				buf[i] = byte(objectID + i)
			}
		case len(data) == len(buf):
			// Full-size payload: write straight from the caller's slice.
			buf = data
		default:
			n := copy(buf, data)
			for i := n; i < len(buf); i++ {
				buf[i] = 0
			}
		}
	}
	attempt := func() error {
		var err error
		if op == Put {
			_, err = s.dev.WriteAt(buf, off)
		} else {
			_, err = s.dev.ReadAt(buf, off)
		}
		return err
	}
	storageElapsed := func() time.Duration {
		return s.clock.Now().Sub(start) - net/2
	}

	err := attempt()
	if res.Enabled {
		firstFailed := err != nil
		// Hedge: a GET whose first attempt failed or ran long gets one
		// immediate second chance.
		if op == Get && (err != nil || storageElapsed() >= res.HedgeAfter) &&
			storageElapsed() < s.cfg.Timeout {
			s.Hedges++
			err = attempt()
		}
		// Retries with doubling backoff, inside the timeout budget.
		backoff := res.RetryBackoff
		for r := 0; err != nil && r < res.MaxRetries; r++ {
			if storageElapsed()+backoff >= s.cfg.Timeout {
				break
			}
			s.clock.Sleep(backoff)
			backoff *= 2
			s.Retries++
			err = attempt()
		}
		if firstFailed && err == nil {
			s.Recovered++
		}
	}
	storageTime := storageElapsed()

	s.clock.Sleep(net / 2) // response flight
	resp := Response{Latency: s.clock.Now().Sub(start)}
	switch {
	case err != nil && storageTime >= s.cfg.Timeout:
		s.Timeouts++
		resp.Err = ErrTimeout
	case err != nil:
		s.Errors++
		resp.Err = fmt.Errorf("netstore: internal storage error")
	case storageTime >= s.cfg.Timeout:
		// Completed, but past the budget: the client already gave up.
		s.Timeouts++
		resp.Err = ErrTimeout
	}
	if res.Enabled {
		s.observeOutcome(resp.Err == nil)
	}
	if op == Get && resp.Err == nil {
		return buf, resp
	}
	return nil, resp
}

// observeOutcome advances the circuit breaker after a served request.
func (s *Server) observeOutcome(ok bool) {
	res := s.cfg.Resilience
	if ok {
		if s.breaker != breakerClosed {
			s.breaker = breakerClosed
			s.BreakerCloses++
		}
		s.failStrk = 0
		return
	}
	s.failStrk++
	switch s.breaker {
	case breakerHalfOpen:
		// The probe failed: back to open for another cooldown.
		s.breaker = breakerOpen
		s.openedAt = s.clock.Now()
	case breakerClosed:
		if s.failStrk >= res.BreakerThreshold {
			s.breaker = breakerOpen
			s.openedAt = s.clock.Now()
			s.BreakerOpens++
		}
	}
}

// BreakerState names the circuit breaker position ("closed", "open",
// "half-open").
func (s *Server) BreakerState() string { return s.breaker.String() }

// Preload writes every object once so GETs hit allocated storage.
func (s *Server) Preload() error {
	for i := 0; i < s.cfg.Objects; i++ {
		if r := s.Handle(Put, i); r.Err != nil {
			return fmt.Errorf("netstore: preload object %d: %w", i, r.Err)
		}
	}
	return nil
}

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// PublishMetrics pushes the server's counters into a registry under the
// "netstore." prefix (no-op on a nil registry).
func (s *Server) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Add("netstore.requests", s.Requests)
	reg.Add("netstore.timeouts", s.Timeouts)
	reg.Add("netstore.errors", s.Errors)
	reg.Add("netstore.retries", s.Retries)
	reg.Add("netstore.hedges", s.Hedges)
	reg.Add("netstore.recovered", s.Recovered)
	reg.Add("netstore.fast_fails", s.FastFails)
	reg.Add("netstore.breaker_opens", s.BreakerOpens)
	reg.Add("netstore.breaker_closes", s.BreakerCloses)
}
