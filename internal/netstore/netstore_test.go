package netstore

import (
	"errors"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

func newServer(t *testing.T, cfg Config) (*Server, *blockdev.Disk, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 31)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	return NewServer(disk, clock, cfg), disk, clock
}

func TestHealthyRequests(t *testing.T) {
	s, _, _ := newServer(t, Config{})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	r := s.Handle(Get, 7)
	if r.Err != nil {
		t.Fatalf("get: %v", r.Err)
	}
	// Latency ≈ net RTT + storage (64 KiB ≈ 0.7 ms + seek).
	if r.Latency < time.Millisecond || r.Latency > 50*time.Millisecond {
		t.Fatalf("latency = %v", r.Latency)
	}
	w := s.Handle(Put, 7)
	if w.Err != nil {
		t.Fatalf("put: %v", w.Err)
	}
}

func TestBadRequest(t *testing.T) {
	s, _, _ := newServer(t, Config{})
	if r := s.Handle(Get, -1); !errors.Is(r.Err, ErrBadRequest) {
		t.Fatalf("negative id: %v", r.Err)
	}
	if r := s.Handle(Get, 1<<20); !errors.Is(r.Err, ErrBadRequest) {
		t.Fatalf("huge id: %v", r.Err)
	}
	if s.Errors != 2 {
		t.Fatalf("errors = %d", s.Errors)
	}
}

func TestAttackTurnsIntoVisibleFailures(t *testing.T) {
	s, disk, _ := newServer(t, Config{Timeout: time.Second})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	base := s.Handle(Put, 2).Latency
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	r := s.Handle(Put, 3)
	if r.Err == nil {
		t.Fatal("put under full attack should fail")
	}
	if s.Timeouts+s.Errors == 0 {
		t.Fatal("failure not counted")
	}
	// The failure is externally visible through latency too: the drive
	// burned its whole retry budget first.
	if r.Latency < 10*base {
		t.Fatalf("latency = %v, want well above baseline %v", r.Latency, base)
	}
}

func TestSlowCompletionClassifiedAsTimeout(t *testing.T) {
	// A request that exceeds the server budget is a timeout to the
	// client even when the storage eventually answers.
	s, disk, _ := newServer(t, Config{Timeout: 100 * time.Millisecond})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.2})
	sawTimeout := false
	for i := 0; i < 40 && !sawTimeout; i++ {
		r := s.Handle(Put, i)
		if errors.Is(r.Err, ErrTimeout) {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatal("no request exceeded the 100 ms budget under moderate attack")
	}
}

func TestModerateAttackRaisesLatencyWithoutTimeout(t *testing.T) {
	s, disk, _ := newServer(t, Config{})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	base := s.Handle(Put, 5).Latency
	disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 0.17})
	slow := s.Handle(Put, 6)
	if slow.Err != nil {
		t.Fatalf("moderate attack should not time out: %v", slow.Err)
	}
	if slow.Latency < 2*base {
		t.Fatalf("latency %v should visibly exceed baseline %v", slow.Latency, base)
	}
}

func TestConfigDefaults(t *testing.T) {
	s, _, _ := newServer(t, Config{})
	cfg := s.Config()
	if cfg.ObjectSize != 64<<10 || cfg.Objects != 1024 || cfg.Timeout != 5*time.Second {
		t.Fatalf("defaults: %+v", cfg)
	}
	if Get.String() != "GET" || Put.String() != "PUT" {
		t.Fatal("op names")
	}
}

func TestHandleObjectRoundTrip(t *testing.T) {
	s, _, _ := newServer(t, Config{ObjectSize: 4096})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	if _, r := s.HandleObject(Put, 3, payload); r.Err != nil {
		t.Fatalf("put: %v", r.Err)
	}
	got, r := s.HandleObject(Get, 3, nil)
	if r.Err != nil {
		t.Fatalf("get: %v", r.Err)
	}
	if len(got) != 4096 {
		t.Fatalf("got %d bytes, want the full object size", len(got))
	}
	for i := range got {
		want := byte(0) // PUT zero-pads short payloads to the object size
		if i < len(payload) {
			want = payload[i]
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
}

func TestHandleObjectOversizedPayloadRejected(t *testing.T) {
	s, _, _ := newServer(t, Config{ObjectSize: 4096})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	if _, r := s.HandleObject(Put, 0, make([]byte, 4097)); !errors.Is(r.Err, ErrBadRequest) {
		t.Fatalf("oversized put: %v", r.Err)
	}
}

// TestHandleObjectMatchesHandleTiming pins that the payload path is
// timing-identical to the legacy fixed-pattern path: Handle is
// HandleObject with a nil payload, so existing callers see the same RNG
// draws and latencies.
func TestHandleObjectMatchesHandleTiming(t *testing.T) {
	a, _, _ := newServer(t, Config{Seed: 9})
	b, _, _ := newServer(t, Config{Seed: 9})
	if err := a.Preload(); err != nil {
		t.Fatal(err)
	}
	if err := b.Preload(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ra := a.Handle(Get, i)
		_, rb := b.HandleObject(Get, i, nil)
		if ra.Latency != rb.Latency || (ra.Err == nil) != (rb.Err == nil) {
			t.Fatalf("object %d: Handle %+v != HandleObject %+v", i, ra, rb)
		}
	}
}
