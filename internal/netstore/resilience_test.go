package netstore

import (
	"errors"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/faultinj"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// newHardenedServer builds a server over a fault-injected disk.
func newHardenedServer(t *testing.T, cfg Config, faults ...faultinj.Fault) (*Server, *blockdev.Disk, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 31)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	dev := faultinj.Wrap(disk, clock, 17, faults...)
	return NewServer(dev, clock, cfg), disk, clock
}

func TestResilienceDisabledPreservesBareBehavior(t *testing.T) {
	// The hardened path is opt-in; with it off, the request stream —
	// latencies included, which means the RNG draw sequence — must be
	// byte-identical to the bare server's.
	run := func(cfg Config) []time.Duration {
		s, _, _ := newServer(t, cfg)
		if err := s.Preload(); err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, 50)
		for i := range out {
			out[i] = s.Handle(Get, i%s.cfg.Objects).Latency
		}
		return out
	}
	bare := run(Config{})
	zero := run(Config{Resilience: ResilienceConfig{}})
	for i := range bare {
		if bare[i] != zero[i] {
			t.Fatalf("request %d: bare %v vs zero-resilience %v", i, bare[i], zero[i])
		}
	}
}

func TestRetriesMaskTransientStorageErrors(t *testing.T) {
	// A 40 ms injected error window: the bare server answers 503s, the
	// hardened server retries past the window and the client never sees
	// the fault.
	burst := faultinj.Fault{Kind: faultinj.TransientError, Duration: 40 * time.Millisecond}
	cfg := Config{Resilience: ResilienceConfig{Enabled: true}}
	s, _, _ := newHardenedServer(t, cfg, burst)
	r := s.Handle(Put, 1)
	if r.Err != nil {
		t.Fatalf("hardened PUT failed: %v", r.Err)
	}
	if s.Retries == 0 || s.Recovered != 1 {
		t.Fatalf("retries=%d recovered=%d", s.Retries, s.Recovered)
	}

	bare, _, _ := newHardenedServer(t, Config{}, burst)
	if r := bare.Handle(Put, 1); r.Err == nil {
		t.Fatal("bare server should surface the fault")
	}
}

func TestHedgedGetRecoversWithoutBackoff(t *testing.T) {
	// Probability-0.5 read faults: a failed GET is hedged immediately.
	flaky := faultinj.Fault{
		Kind: faultinj.TransientError, Ops: faultinj.OpRead,
		Duration: time.Hour, Probability: 0.5,
	}
	cfg := Config{Resilience: ResilienceConfig{Enabled: true}}
	s, _, _ := newHardenedServer(t, cfg, flaky)
	fails := 0
	for i := 0; i < 40; i++ {
		if r := s.Handle(Get, i); r.Err != nil {
			fails++
		}
	}
	if s.Hedges == 0 {
		t.Fatal("no GETs were hedged")
	}
	if fails == 40 {
		t.Fatal("hedging never recovered a request")
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	cfg := Config{
		Resilience: ResilienceConfig{
			Enabled:          true,
			MaxRetries:       1,
			BreakerThreshold: 3,
			BreakerCooldown:  2 * time.Second,
		},
	}
	// Storage dead for 10 s, then healthy.
	dead := faultinj.Fault{Kind: faultinj.TransientError, Duration: 10 * time.Second}
	s, _, clock := newHardenedServer(t, cfg, dead)

	// Failures accumulate until the breaker opens.
	for i := 0; s.BreakerState() == "closed" && i < 10; i++ {
		s.Handle(Put, i)
	}
	if s.BreakerState() != "open" || s.BreakerOpens != 1 {
		t.Fatalf("breaker %s after failures (opens=%d)", s.BreakerState(), s.BreakerOpens)
	}
	// While open, requests fast-fail without touching storage.
	if r := s.Handle(Put, 0); !errors.Is(r.Err, ErrUnavailable) {
		t.Fatalf("open breaker served request: %v", r.Err)
	}
	if s.FastFails == 0 {
		t.Fatal("fast-fail not counted")
	}
	// A probe during the outage re-opens the breaker.
	clock.Advance(3 * time.Second)
	if r := s.Handle(Put, 0); errors.Is(r.Err, ErrUnavailable) {
		t.Fatalf("cooldown elapsed but no probe let through: %v", r.Err)
	}
	if s.BreakerState() != "open" {
		t.Fatalf("failed probe should re-open, got %s", s.BreakerState())
	}
	// After the outage ends, the next probe closes the circuit.
	clock.Advance(10 * time.Second)
	if r := s.Handle(Put, 0); r.Err != nil {
		t.Fatalf("probe after outage: %v", r.Err)
	}
	if s.BreakerState() != "closed" || s.BreakerCloses != 1 {
		t.Fatalf("breaker %s after recovery (closes=%d)", s.BreakerState(), s.BreakerCloses)
	}
}

func TestCircuitBreakerHalfOpenReOpensUnderSustainedPartition(t *testing.T) {
	// A partition that outlives many cooldown periods: every half-open
	// probe must fail straight back to open without ever counting as a
	// fresh closed→open transition, requests between probes must keep
	// fast-failing, and only the first probe after the partition heals
	// may close the circuit.
	cfg := Config{
		Resilience: ResilienceConfig{
			Enabled:          true,
			MaxRetries:       1,
			BreakerThreshold: 3,
			BreakerCooldown:  2 * time.Second,
		},
	}
	partition := faultinj.Fault{Kind: faultinj.TransientError, Duration: 100 * time.Second}
	s, _, clock := newHardenedServer(t, cfg, partition)

	for i := 0; s.BreakerState() == "closed" && i < 10; i++ {
		s.Handle(Put, i)
	}
	if s.BreakerState() != "open" || s.BreakerOpens != 1 {
		t.Fatalf("breaker %s after failures (opens=%d)", s.BreakerState(), s.BreakerOpens)
	}

	for cycle := 0; cycle < 5; cycle++ {
		clock.Advance(cfg.Resilience.BreakerCooldown + time.Second)
		if r := s.Handle(Put, 0); errors.Is(r.Err, ErrUnavailable) {
			t.Fatalf("cycle %d: cooldown elapsed but probe was shed: %v", cycle, r.Err)
		} else if r.Err == nil {
			t.Fatalf("cycle %d: probe succeeded mid-partition", cycle)
		}
		if s.BreakerState() != "open" {
			t.Fatalf("cycle %d: failed probe left breaker %s, want open", cycle, s.BreakerState())
		}
		// Before the next cooldown elapses, requests are shed unserved.
		before := s.FastFails
		if r := s.Handle(Put, 0); !errors.Is(r.Err, ErrUnavailable) {
			t.Fatalf("cycle %d: freshly re-opened breaker served a request: %v", cycle, r.Err)
		}
		if s.FastFails != before+1 {
			t.Fatalf("cycle %d: fast-fails %d, want %d", cycle, s.FastFails, before+1)
		}
	}
	// Half-open → open re-transitions are not new opens: the outage is
	// one incident however many probes it swallows.
	if s.BreakerOpens != 1 || s.BreakerCloses != 0 {
		t.Fatalf("probe cycles miscounted: opens=%d closes=%d, want 1, 0", s.BreakerOpens, s.BreakerCloses)
	}

	clock.Advance(200 * time.Second)
	if r := s.Handle(Put, 0); r.Err != nil {
		t.Fatalf("probe after partition healed: %v", r.Err)
	}
	if s.BreakerState() != "closed" || s.BreakerCloses != 1 {
		t.Fatalf("breaker %s after recovery (closes=%d)", s.BreakerState(), s.BreakerCloses)
	}
}

func TestNetstorePublishMetrics(t *testing.T) {
	burst := faultinj.Fault{Kind: faultinj.TransientError, Duration: 40 * time.Millisecond}
	cfg := Config{Resilience: ResilienceConfig{Enabled: true}}
	s, _, _ := newHardenedServer(t, cfg, burst)
	s.Handle(Put, 1)
	s.Handle(Get, 1)
	reg := metrics.NewRegistry()
	s.PublishMetrics(reg)
	snap := reg.Snapshot()
	if snap.Counters["netstore.requests"] != 2 {
		t.Fatalf("snapshot: %+v", snap.Counters)
	}
	if snap.Counters["netstore.retries"] == 0 {
		t.Fatalf("snapshot: %+v", snap.Counters)
	}
	for _, key := range []string{
		"netstore.timeouts", "netstore.errors", "netstore.hedges",
		"netstore.recovered", "netstore.fast_fails",
		"netstore.breaker_opens", "netstore.breaker_closes",
	} {
		if _, ok := snap.Counters[key]; !ok {
			t.Fatalf("key %s missing from snapshot", key)
		}
	}
	s.PublishMetrics(nil) // must not panic
}
