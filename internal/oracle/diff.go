// Differential self-check: oracle prediction versus Monte-Carlo simulation
// over a grid of operating points. Every cell runs the real victim stack —
// drive, block device, fio workload, virtual clock — and compares the
// measured sequential throughput against the closed-form prediction; a
// cell whose divergence exceeds the tolerance is a correctness failure in
// one of the two models.

package oracle

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/fio"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/report"
	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// CellSpec is one operating point of a differential run, expressed at the
// drive level (excitation already converted to head off-track state).
type CellSpec struct {
	// Label names the cell in reports; empty labels are synthesized.
	Label string
	// SPL optionally records the incident sound pressure that produced
	// Vib (informational; the acoustic chain is deterministic and is
	// exercised by its own tests).
	SPL units.SPL
	// Vib is the single-tone excitation at the head.
	Vib hdd.Vibration
	// Op is the access kind.
	Op hdd.Op
	// Offset is the start of the swept region (zoned recording makes
	// inner offsets slower and more vulnerable).
	Offset int64
	// BlockSize is the per-request length in bytes.
	BlockSize int64
}

func (c CellSpec) label() string {
	if c.Label != "" {
		return c.Label
	}
	return fmt.Sprintf("%v a=%.3f %v %dB @%d", c.Vib.Freq, c.Vib.Amplitude, c.Op, c.BlockSize, c.Offset)
}

// Differ runs the differential self-check over a set of cells.
type Differ struct {
	// Model is the victim drive, shared by predictor and simulator.
	Model hdd.Model
	// Span is the region each fio job sweeps (default 1 GiB).
	Span int64
	// JobRuntime is the per-simulation measurement window in virtual
	// time (default 2 s).
	JobRuntime time.Duration
	// Repeats averages this many independently seeded simulations per
	// cell to tighten the Monte-Carlo estimate (default 2).
	Repeats int
	// Seed fixes the run; per-cell seeds derive from it.
	Seed int64
	// Workers bounds concurrent cells; ≤ 0 means one per CPU. Seeding is
	// per-cell, so results are identical at any worker count.
	Workers int
	// Tolerance is the maximum allowed divergence per cell (default 0.12).
	Tolerance float64
	// FloorFrac scales the divergence denominator floor: divergence is
	// |pred − sim| / max(pred, sim, FloorFrac·quiet), so collapsed cells
	// (both sides ≈ 0) compare on the throughput scale that matters
	// rather than amplifying noise in tiny ratios (default 0.05).
	FloorFrac float64
	// Mutation seeds a known historical bug into the predictor; the
	// mutation tests use it to prove the harness trips (default MutNone).
	Mutation Mutation
	// Metrics, when set, receives per-cell layer counters plus the
	// harness's own outcome counters under "oracle." (nil =
	// uninstrumented).
	Metrics *metrics.Registry
}

func (d Differ) withDefaults() Differ {
	if d.Span == 0 {
		d.Span = 1 << 30
	}
	if d.JobRuntime == 0 {
		d.JobRuntime = 2 * time.Second
	}
	if d.Repeats <= 0 {
		d.Repeats = 2
	}
	if d.Seed == 0 {
		d.Seed = 1
	}
	if d.Tolerance == 0 {
		d.Tolerance = 0.12
	}
	if d.FloorFrac == 0 {
		d.FloorFrac = 0.05
	}
	return d
}

// Cell is one compared operating point of a Report.
type Cell struct {
	Label         string  `json:"label"`
	FreqHz        float64 `json:"freq_hz"`
	SPLdB         float64 `json:"spl_db,omitempty"`
	Amplitude     float64 `json:"amplitude_track_frac"`
	Op            string  `json:"op"`
	Offset        int64   `json:"offset"`
	BlockSize     int64   `json:"block_size"`
	PredictedMBps float64 `json:"predicted_mbps"`
	SimulatedMBps float64 `json:"simulated_mbps"`
	Divergence    float64 `json:"divergence"`
	Within        bool    `json:"within_tolerance"`
}

// Report is the outcome of a differential run.
type Report struct {
	Schema        string  `json:"schema"`
	Model         string  `json:"model"`
	Mutation      string  `json:"mutation"`
	Tolerance     float64 `json:"tolerance"`
	Cells         []Cell  `json:"cells"`
	MaxDivergence float64 `json:"max_divergence"`
	Failures      int     `json:"failures"`
}

// ReportSchema versions the report artifact.
const ReportSchema = "deepnote-selfcheck/v1"

// Passed reports whether every cell stayed within tolerance.
func (r Report) Passed() bool { return r.Failures == 0 }

// Table renders the per-cell divergence table.
func (r Report) Table() *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Differential self-check (%s, tolerance %.0f%%)", r.Model, r.Tolerance*100),
		"Cell", "Predicted MB/s", "Simulated MB/s", "Divergence", "OK")
	for _, c := range r.Cells {
		okMark := "ok"
		if !c.Within {
			okMark = "FAIL"
		}
		tb.AddRow(c.Label,
			fmt.Sprintf("%.2f", c.PredictedMBps),
			fmt.Sprintf("%.2f", c.SimulatedMBps),
			fmt.Sprintf("%.1f%%", c.Divergence*100),
			okMark)
	}
	return tb
}

// WriteReport writes the report as indented JSON.
func WriteReport(path string, r Report) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("oracle: marshal report: %w", err)
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Run compares oracle and simulator on every cell and aggregates the
// divergences. It returns an error only for malformed specs or simulator
// failures; out-of-tolerance cells are reported, not errored, so callers
// decide how to fail.
func (d Differ) Run(cells []CellSpec) (Report, error) {
	d = d.withDefaults()
	if len(cells) == 0 {
		return Report{}, errNoCells
	}
	if err := d.Model.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{
		Schema:    ReportSchema,
		Model:     d.Model.Name,
		Mutation:  d.Mutation.String(),
		Tolerance: d.Tolerance,
	}
	out, err := parallel.RunObserved(context.Background(), cells, d.Workers, d.Metrics,
		func(_ context.Context, i int, spec CellSpec) (Cell, error) {
			return d.runCell(i, spec)
		})
	if err != nil {
		return Report{}, err
	}
	for _, c := range out {
		rep.Cells = append(rep.Cells, c)
		if c.Divergence > rep.MaxDivergence {
			rep.MaxDivergence = c.Divergence
		}
		if !c.Within {
			rep.Failures++
		}
	}
	d.Metrics.Add("oracle.cells", int64(len(rep.Cells)))
	d.Metrics.Add("oracle.failures", int64(rep.Failures))
	d.Metrics.MaxGauge("oracle.max_divergence", rep.MaxDivergence)
	return rep, nil
}

// runCell evaluates one cell: one closed-form prediction against the mean
// of Repeats independently seeded simulations.
func (d Differ) runCell(index int, spec CellSpec) (Cell, error) {
	in := Input{Model: d.Model, Vib: spec.Vib, Op: spec.Op, Offset: spec.Offset, BlockSize: spec.BlockSize}
	pred, err := PredictMutant(in, d.Mutation)
	if err != nil {
		return Cell{}, fmt.Errorf("oracle: cell %q: %w", spec.label(), err)
	}
	quietIn := in
	quietIn.Vib = hdd.Quiet()
	quiet, err := Predict(quietIn)
	if err != nil {
		return Cell{}, fmt.Errorf("oracle: cell %q quiet baseline: %w", spec.label(), err)
	}

	sum := 0.0
	for r := 0; r < d.Repeats; r++ {
		mbps, err := d.simulate(spec, parallel.SeedFor(d.Seed, index*d.Repeats+r))
		if err != nil {
			return Cell{}, fmt.Errorf("oracle: cell %q: %w", spec.label(), err)
		}
		sum += mbps
	}
	sim := sum / float64(d.Repeats)

	scale := pred.ThroughputMBps
	if sim > scale {
		scale = sim
	}
	if floor := d.FloorFrac * quiet.ThroughputMBps; floor > scale {
		scale = floor
	}
	div := 0.0
	if scale > 0 {
		div = absFloat(pred.ThroughputMBps-sim) / scale
	}
	return Cell{
		Label:         spec.label(),
		FreqHz:        float64(spec.Vib.Freq),
		SPLdB:         spec.SPL.DB,
		Amplitude:     spec.Vib.Amplitude,
		Op:            spec.Op.String(),
		Offset:        spec.Offset,
		BlockSize:     spec.BlockSize,
		PredictedMBps: pred.ThroughputMBps,
		SimulatedMBps: sim,
		Divergence:    div,
		Within:        div <= d.Tolerance,
	}, nil
}

// simulate runs one fio job against a fresh victim stack and returns the
// measured sequential throughput in MB/s.
func (d Differ) simulate(spec CellSpec, seed int64) (float64, error) {
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(d.Model, clock, seed)
	if err != nil {
		return 0, err
	}
	drive.SetVibration(spec.Vib)
	disk := blockdev.NewDisk(drive)

	span := d.Span
	if spec.Offset+span > d.Model.CapacityBytes {
		span = d.Model.CapacityBytes - spec.Offset
	}
	pattern := fio.SeqRead
	if spec.Op == hdd.OpWrite {
		pattern = fio.SeqWrite
	}
	res, err := fio.NewRunner(disk, clock).WithMetrics(d.Metrics).Run(fio.Job{
		Name:      spec.label(),
		Pattern:   pattern,
		BlockSize: int(spec.BlockSize),
		Offset:    spec.Offset,
		Span:      span,
		Runtime:   d.JobRuntime,
		Seed:      seed,
	})
	if err != nil {
		return 0, err
	}
	if d.Metrics != nil {
		drive.PublishMetrics(d.Metrics)
		disk.PublishMetrics(d.Metrics)
	}
	return res.ThroughputMBps(), nil
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
