package oracle

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/units"
)

// testCells is a compact grid spanning quiet, transition, and collapse
// cells at both diameters.
func testCells(m hdd.Model) []CellSpec {
	inner := m.CapacityBytes - (1 << 22)
	return []CellSpec{
		{Vib: hdd.Quiet(), Op: hdd.OpWrite, Offset: 0, BlockSize: 4096},
		{Vib: hdd.Vibration{Freq: 1200 * units.Hz, Amplitude: 0.17}, Op: hdd.OpWrite, Offset: 0, BlockSize: 4096},
		{Vib: hdd.Vibration{Freq: 1200 * units.Hz, Amplitude: 0.20}, Op: hdd.OpWrite, Offset: inner, BlockSize: 65536},
		{Vib: hdd.Vibration{Freq: 900 * units.Hz, Amplitude: 0.50}, Op: hdd.OpRead, Offset: 0, BlockSize: 4096},
	}
}

// TestDifferCleanTreePasses is the harness's own baseline: predictor and
// simulator agree on a mixed grid within tolerance.
func TestDifferCleanTreePasses(t *testing.T) {
	d := Differ{Model: hdd.Barracuda500(), JobRuntime: time.Second, Workers: 4}
	rep, err := d.Run(testCells(d.Model))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("clean tree must pass the differential check:\n%s", rep.Table())
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("expected 4 cells, got %d", len(rep.Cells))
	}
}

// TestDifferDeterministicAcrossWorkers pins the seeding discipline: the
// report must be bit-identical at any worker count.
func TestDifferDeterministicAcrossWorkers(t *testing.T) {
	cells := testCells(hdd.Barracuda500())
	run := func(workers int) Report {
		d := Differ{Model: hdd.Barracuda500(), JobRuntime: 500 * time.Millisecond, Workers: workers}
		rep, err := d.Run(cells)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
		t.Fatalf("report differs between 1 and 8 workers:\n%+v\n%+v", a, b)
	}
}

// TestDifferRejectsEmptyGrid guards the degenerate call.
func TestDifferRejectsEmptyGrid(t *testing.T) {
	if _, err := (Differ{Model: hdd.Barracuda500()}).Run(nil); !errors.Is(err, errNoCells) {
		t.Fatalf("empty grid must be rejected, got %v", err)
	}
}

// TestWriteReportRoundTrips checks the CI artifact format.
func TestWriteReportRoundTrips(t *testing.T) {
	d := Differ{Model: hdd.Barracuda500(), JobRuntime: 200 * time.Millisecond}
	rep, err := d.Run(testCells(d.Model)[:1])
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "selfcheck.json")
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || len(back.Cells) != 1 {
		t.Fatalf("report did not round-trip: %+v", back)
	}
}

// TestDifferPublishesMetrics checks the observability wiring: a run with a
// registry attached surfaces oracle counters alongside the victim stack's.
func TestDifferPublishesMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	d := Differ{Model: hdd.Barracuda500(), JobRuntime: 200 * time.Millisecond, Metrics: reg}
	if _, err := d.Run(testCells(d.Model)[:2]); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, want := range []string{"oracle.cells", "oracle.failures", "hdd.writes", "fio.ops"} {
		if _, ok := snap.Counters[want]; !ok {
			t.Fatalf("metrics snapshot missing %q; have %v", want, snap.Counters)
		}
	}
}
