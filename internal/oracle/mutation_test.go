package oracle

import (
	"testing"
	"time"

	"deepnote/internal/hdd"
	"deepnote/internal/units"
)

// stressModel lowers the retry budget and the retry cost so op failures
// are common and failure-path accounting dominates observable latency —
// the operating regime where each historical timing bug has maximum
// statistical power. The stock Barracuda's 64-retry budget hides failures
// behind seconds of retrying, which is realistic but makes a differential
// test blind to small accounting errors.
func stressModel() hdd.Model {
	m := hdd.Barracuda500()
	m.MaxRetries = 2
	m.RetryRead = 100 * time.Microsecond
	m.RetryWrite = 100 * time.Microsecond
	return m
}

// mutationCells targets each bug's blind spot: inner-offset cells for the
// zoning bug, multi-chunk cells for the whole-request-window bug, and
// large failing reads for the failure-latency bug.
func mutationCells(m hdd.Model) []CellSpec {
	inner := m.CapacityBytes - (1 << 24)
	return []CellSpec{
		{Label: "zoning", Vib: hdd.Vibration{Freq: 1200 * units.Hz, Amplitude: 0.20},
			Op: hdd.OpWrite, Offset: inner, BlockSize: 4096},
		{Label: "multi-chunk", Vib: hdd.Vibration{Freq: 1200 * units.Hz, Amplitude: 0.17},
			Op: hdd.OpWrite, Offset: 0, BlockSize: 65536},
		{Label: "failure-latency", Vib: hdd.Vibration{Freq: 1200 * units.Hz, Amplitude: 0.23, ExtraJitter: 0.02},
			Op: hdd.OpRead, Offset: 0, BlockSize: 1 << 20},
	}
}

func mutationDiffer(mu Mutation) Differ {
	return Differ{
		Model:      stressModel(),
		JobRuntime: 2 * time.Second,
		Repeats:    3,
		Tolerance:  0.08,
		Workers:    4,
		Mutation:   mu,
	}
}

// TestMutationHarnessCleanPasses establishes that the tolerance below is
// tight but satisfiable: the faithful predictor agrees with the simulator
// on every mutation-target cell.
func TestMutationHarnessCleanPasses(t *testing.T) {
	rep, err := mutationDiffer(MutNone).Run(mutationCells(stressModel()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("clean predictor must agree with the simulator:\n%s", rep.Table())
	}
}

// TestMutationsTripHarness is the proof the differential check has teeth:
// re-introducing any one of the three historical timing bugs into the
// predictor pushes at least one cell beyond tolerance. Equivalently,
// reverting the corresponding simulator fix (which would re-align the
// simulator with the mutant, not the faithful predictor) makes selfcheck
// fail.
func TestMutationsTripHarness(t *testing.T) {
	for _, mu := range []Mutation{MutFlatHoldWindow, MutWholeRequestWindow, MutFullBaseOnFailure} {
		t.Run(mu.String(), func(t *testing.T) {
			rep, err := mutationDiffer(mu).Run(mutationCells(stressModel()))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Passed() {
				t.Fatalf("harness failed to detect seeded bug %v:\n%s", mu, rep.Table())
			}
		})
	}
}
