// Package oracle is the analytic counterpart of the drive simulator: a
// closed-form predictor that, for any (model, vibration, op, block size),
// computes per-chunk success probability, expected retries via the
// geometric distribution, expected per-op latency, and steady-state
// sequential throughput — without ever touching a clock or an RNG.
//
// The derivation follows Shahrad et al. ("Acoustic Denial of Service
// Attacks on HDDs"): one positioning attempt survives a hold window of
// width w radians when A·max|sin| over the window plus half-normal jitter
// stays under the fault threshold, so the per-attempt success probability
// is an integral of the jitter CDF over the uniformly random phase. Every
// chunk then retries independently under the drive's bounded retry budget,
// which makes attempt counts truncated-geometric and op latency a finite
// mixture the package evaluates exactly.
//
// Because the oracle shares no code path with Drive.Access beyond the
// window-peak geometry, agreement between the two is a real correctness
// check: the Differ in this package sweeps a grid of cells comparing
// oracle prediction against Monte-Carlo simulation and fails on divergence
// beyond a stated tolerance. The Mutation variants re-introduce known
// historical timing bugs into the predictor so tests can prove the
// differential harness actually trips when the simulator and the physics
// disagree.
package oracle

import (
	"errors"
	"fmt"
	"math"
	"time"

	"deepnote/internal/hdd"
)

// Mutation selects a deliberately wrong variant of the predictor. Each
// value replicates one historical timing-accounting bug of the simulator,
// so a mutation test can assert that the differential harness fails when
// (and only when) predictor and simulator model different physics.
type Mutation int

// Mutations. MutNone is the faithful predictor.
const (
	MutNone Mutation = iota
	// MutFlatHoldWindow computes every chunk's hold window from the
	// outer-diameter transfer rate, ignoring zoned recording — the bug
	// that understated vulnerability at high offsets.
	MutFlatHoldWindow
	// MutWholeRequestWindow evaluates the entire request as one hold
	// window instead of independent per-chunk windows — the bug that made
	// the old SuccessProbability model a different random process than
	// the simulator for any multi-chunk request.
	MutWholeRequestWindow
	// MutFullBaseOnFailure charges a failed op the media-transfer time of
	// every chunk, including chunks never attempted after the failing one
	// — the bug that overreported failed-op latency.
	MutFullBaseOnFailure
)

// String names the mutation.
func (mu Mutation) String() string {
	switch mu {
	case MutNone:
		return "none"
	case MutFlatHoldWindow:
		return "flat-hold-window"
	case MutWholeRequestWindow:
		return "whole-request-window"
	case MutFullBaseOnFailure:
		return "full-base-on-failure"
	default:
		return fmt.Sprintf("mutation(%d)", int(mu))
	}
}

// Input identifies one operating point to predict.
type Input struct {
	// Model is the drive under excitation.
	Model hdd.Model
	// Vib is the single-tone excitation state at the head (composite
	// vibrations have no closed form and return ErrCompositeVibration).
	Vib hdd.Vibration
	// Op is the access kind.
	Op hdd.Op
	// Offset is the byte offset of the access; zoned recording makes
	// inner offsets slower and more vulnerable.
	Offset int64
	// BlockSize is the per-request transfer length in bytes.
	BlockSize int64
}

// Prediction is the closed-form expectation of what Drive.Access does at
// one operating point, plus the steady-state throughput of a sequential
// workload issuing such ops back to back.
type Prediction struct {
	// PerAttempt is the probability that a single positioning attempt of
	// the first chunk holds track.
	PerAttempt float64
	// ChunkFail is the probability that the first chunk exhausts its
	// retry budget.
	ChunkFail float64
	// OpSuccess is the probability the whole op completes (every chunk
	// succeeds within its budget).
	OpSuccess float64
	// ExpRetries is the expected number of positioning retries per op,
	// averaged over successes and failures.
	ExpRetries float64
	// MeanOKLatency and MeanFailLatency are the expected latencies of
	// completed and failed ops; MeanLatency mixes them by outcome
	// probability. All include the steady-state share of post-failure
	// reseeks.
	MeanOKLatency, MeanFailLatency, MeanLatency time.Duration
	// ThroughputMBps is the steady-state sequential payload throughput
	// in decimal MB/s (completed bytes over wall time, the paper's
	// Figure 2 metric).
	ThroughputMBps float64
}

// chunkStat is the per-chunk analytic state.
type chunkStat struct {
	p          float64 // per-attempt success probability
	fail       float64 // probability the retry budget is exhausted
	expRetries float64 // E[retries | chunk completes]
	transfer   float64 // media transfer time, seconds
}

// Predict computes the faithful closed-form prediction.
func Predict(in Input) (Prediction, error) { return PredictMutant(in, MutNone) }

// PredictMutant computes the prediction under a seeded historical bug.
// Mutations other than MutNone exist for the differential harness's own
// mutation tests; they must never be used for real predictions.
func PredictMutant(in Input, mu Mutation) (Prediction, error) {
	m := in.Model
	if err := m.Validate(); err != nil {
		return Prediction{}, err
	}
	if in.BlockSize <= 0 {
		return Prediction{}, fmt.Errorf("oracle: block size must be positive, got %d", in.BlockSize)
	}
	if in.Offset < 0 || in.Offset+in.BlockSize > m.CapacityBytes {
		return Prediction{}, fmt.Errorf("oracle: access [%d, %d) outside capacity %d",
			in.Offset, in.Offset+in.BlockSize, m.CapacityBytes)
	}
	if len(in.Vib.Partials) > 0 {
		return Prediction{}, fmt.Errorf("oracle: %w", hdd.ErrCompositeVibration)
	}

	threshold := m.ReadFaultFrac
	retryCost := m.RetryRead.Seconds()
	overhead := m.ReadOverhead.Seconds()
	rotLat := (m.RevolutionPeriod() / 2).Seconds()
	if in.Op == hdd.OpWrite {
		threshold = m.WriteFaultFrac
		retryCost = m.RetryWrite.Seconds()
		overhead = m.WriteOverhead.Seconds()
		rotLat = (m.RevolutionPeriod() / 8).Seconds()
	}
	sigma := m.BaseJitterFrac + in.Vib.ExtraJitter

	chunks := chunkPlan(m, in, mu, threshold, sigma)

	// Aggregate the independent chunk processes into op-level statistics.
	// prefixOK[k] is the probability chunks 0..k-1 all completed, i.e.
	// the probability the op is still alive when chunk k starts.
	opSuccess := 1.0
	succTransfer := 0.0 // Σ transfer, seconds
	succRetryTime := 0.0
	succRetries := 0.0
	failTimeWeighted := 0.0 // Σ_k P(fail at k)·E[time | fail at k]
	failRetriesWeighted := 0.0
	prefixOK := 1.0
	prefixTransfer := 0.0
	prefixRetryTime := 0.0
	prefixRetries := 0.0
	fullTransfer := 0.0
	for _, c := range chunks {
		fullTransfer += c.transfer
	}
	for _, c := range chunks {
		failAt := prefixOK * c.fail
		failTransfer := prefixTransfer
		if mu == MutFullBaseOnFailure {
			failTransfer = fullTransfer
		}
		failTimeWeighted += failAt * (failTransfer + prefixRetryTime + float64(m.MaxRetries)*retryCost)
		failRetriesWeighted += failAt * (prefixRetries + float64(m.MaxRetries))

		opSuccess *= 1 - c.fail
		succTransfer += c.transfer
		succRetryTime += c.expRetries * retryCost
		succRetries += c.expRetries

		prefixOK *= 1 - c.fail
		prefixTransfer += c.transfer
		prefixRetryTime += c.expRetries * retryCost
		prefixRetries += c.expRetries
	}
	pFail := 1 - opSuccess

	// Steady-state sequential workload: the drive loses sequentiality
	// whenever an op fails, so the fraction of ops paying a short reseek
	// plus rotational latency equals the op failure probability.
	seekExtra := m.SeekTime(in.BlockSize).Seconds() + rotLat
	fixed := overhead + pFail*seekExtra

	okLat := fixed + succTransfer + succRetryTime
	failLat := fixed
	if pFail > 0 {
		failLat += failTimeWeighted / pFail
	}
	meanLat := opSuccess*okLat + pFail*failLat

	pred := Prediction{
		PerAttempt:      chunks[0].p,
		ChunkFail:       chunks[0].fail,
		OpSuccess:       opSuccess,
		ExpRetries:      opSuccess*succRetries + failRetriesWeighted,
		MeanOKLatency:   secondsToDuration(okLat),
		MeanFailLatency: secondsToDuration(failLat),
		MeanLatency:     secondsToDuration(meanLat),
	}
	if meanLat > 0 {
		pred.ThroughputMBps = float64(in.BlockSize) * opSuccess / meanLat / 1e6
	}
	return pred, nil
}

// chunkPlan splits the request into the simulator's service chunks and
// computes each chunk's analytic attempt statistics.
func chunkPlan(m hdd.Model, in Input, mu Mutation, threshold, sigma float64) []chunkStat {
	if mu == MutWholeRequestWindow {
		// The historical predictor treated the whole request as a single
		// hold window at the outer-diameter rate.
		hold := m.TransferTime(in.BlockSize) + m.WedgeWindow
		w := in.Vib.Freq.AngularVelocity() * hold.Seconds()
		p := attemptSuccess(m, in.Vib.Amplitude, sigma, threshold, w)
		c := chunkStat{p: p, transfer: m.TransferTimeAt(in.Offset, in.BlockSize).Seconds()}
		c.fail, c.expRetries = retryStats(p, m.MaxRetries)
		return []chunkStat{c}
	}
	var chunks []chunkStat
	for done := int64(0); done < in.BlockSize; done += hdd.ChunkBytes {
		n := in.BlockSize - done
		if n > hdd.ChunkBytes {
			n = hdd.ChunkBytes
		}
		transfer := m.TransferTimeAt(in.Offset+done, n)
		holdTransfer := transfer
		if mu == MutFlatHoldWindow {
			holdTransfer = m.TransferTime(n)
		}
		w := in.Vib.Freq.AngularVelocity() * (holdTransfer + m.WedgeWindow).Seconds()
		p := attemptSuccess(m, in.Vib.Amplitude, sigma, threshold, w)
		c := chunkStat{p: p, transfer: transfer.Seconds()}
		c.fail, c.expRetries = retryStats(p, m.MaxRetries)
		chunks = append(chunks, c)
	}
	return chunks
}

// attemptSuccess is the closed-form per-attempt success probability: the
// probability that A·max|sin| over a window of w radians at uniform random
// phase, plus half-normal jitter of scale sigma, stays below the fault
// threshold. The phase expectation is evaluated by deterministic midpoint
// quadrature over one period of the window-peak function.
func attemptSuccess(m hdd.Model, amplitude, sigma, threshold, w float64) float64 {
	if amplitude >= m.ServoLockFrac {
		// Position feedback lost: no attempt can succeed.
		return 0
	}
	if amplitude <= 0 {
		return halfNormalCDF(threshold, sigma)
	}
	if w >= math.Pi {
		// The window always covers a crest: the peak factor is exactly 1.
		return halfNormalCDF(threshold-amplitude, sigma)
	}
	// max|sin| over [φ, φ+w] has period π in φ, so a uniform phase in
	// [0, 2π) reduces to uniform in [0, π).
	const steps = 2048
	sum := 0.0
	for i := 0; i < steps; i++ {
		phi := (float64(i) + 0.5) * math.Pi / steps
		sum += halfNormalCDF(threshold-amplitude*hdd.MaxAbsSinOver(phi, w), sigma)
	}
	return sum / steps
}

// halfNormalCDF is P(|N(0, sigma²)| < x).
func halfNormalCDF(x, sigma float64) float64 {
	if x <= 0 {
		return 0
	}
	if sigma <= 0 {
		return 1
	}
	return math.Erf(x / (sigma * math.Sqrt2))
}

// retryStats evaluates the truncated geometric retry process of one chunk:
// up to maxRetries retries after the first attempt, so the chunk fails
// with probability q^(maxRetries+1), and conditioned on completing, the
// attempt on which it succeeds is geometric truncated at the budget.
func retryStats(p float64, maxRetries int) (fail, expRetries float64) {
	if p <= 0 {
		return 1, 0
	}
	if p >= 1 {
		return 0, 0
	}
	q := 1 - p
	fail = math.Pow(q, float64(maxRetries+1))
	success := 1 - fail
	if success <= 0 {
		return 1, 0
	}
	// E[k | success] with P(k) = p·q^k, k = 0..maxRetries. The budget is
	// small (≤ a few dozen), so the exact finite sum beats the closed
	// form's catastrophic cancellation near p → 0.
	sum := 0.0
	qk := 1.0
	for k := 0; k <= maxRetries; k++ {
		sum += float64(k) * p * qk
		qk *= q
	}
	return fail, sum / success
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// errNoCells guards Differ.Run against an empty grid.
var errNoCells = errors.New("oracle: differential run needs at least one cell")
