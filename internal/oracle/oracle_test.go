package oracle

import (
	"errors"
	"math"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/fio"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
	"deepnote/internal/units"
)

// TestPerAttemptMatchesMonteCarlo checks the quadrature against the
// drive's own Monte-Carlo estimator at a single-chunk operating point:
// both describe one positioning attempt of one 4 KiB chunk.
func TestPerAttemptMatchesMonteCarlo(t *testing.T) {
	m := hdd.Barracuda500()
	for _, tc := range []struct {
		name string
		vib  hdd.Vibration
		op   hdd.Op
	}{
		{"write transition", hdd.Vibration{Freq: 1200 * units.Hz, Amplitude: 0.17}, hdd.OpWrite},
		{"read transition", hdd.Vibration{Freq: 900 * units.Hz, Amplitude: 0.28}, hdd.OpRead},
		{"low freq", hdd.Vibration{Freq: 200 * units.Hz, Amplitude: 0.16}, hdd.OpWrite},
		{"jitter only", hdd.Vibration{ExtraJitter: 0.05}, hdd.OpWrite},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pred, err := Predict(Input{Model: m, Vib: tc.vib, Op: tc.op, BlockSize: hdd.ChunkBytes})
			if err != nil {
				t.Fatal(err)
			}
			mc, err := m.SuccessProbability(tc.op, tc.vib, hdd.ChunkBytes, 40000, 3)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(pred.PerAttempt - mc); diff > 0.02 {
				t.Fatalf("per-attempt success: analytic %.4f vs Monte-Carlo %.4f (diff %.4f)", pred.PerAttempt, mc, diff)
			}
		})
	}
}

// TestOpSuccessIsChunkProduct pins the multi-chunk composition law: a
// 64 KiB op at uniform excitation succeeds iff all 16 chunks do.
func TestOpSuccessIsChunkProduct(t *testing.T) {
	m := hdd.Barracuda500()
	vib := hdd.Vibration{Freq: 1200 * units.Hz, Amplitude: 0.10, ExtraJitter: 0.030}
	single, err := Predict(Input{Model: m, Vib: vib, Op: hdd.OpWrite, BlockSize: hdd.ChunkBytes})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Predict(Input{Model: m, Vib: vib, Op: hdd.OpWrite, BlockSize: 16 * hdd.ChunkBytes})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1-single.ChunkFail, 16)
	if diff := math.Abs(multi.OpSuccess - want); diff > 1e-9 {
		t.Fatalf("16-chunk op success %.6f, want product of chunk successes %.6f", multi.OpSuccess, want)
	}
}

// TestQuietThroughputMatchesSimulator anchors the latency model: with no
// excitation there are no retries and no failures, so predicted throughput
// must match a quiet fio run almost exactly.
func TestQuietThroughputMatchesSimulator(t *testing.T) {
	m := hdd.Barracuda500()
	for _, op := range []hdd.Op{hdd.OpWrite, hdd.OpRead} {
		pred, err := Predict(Input{Model: m, Vib: hdd.Quiet(), Op: op, BlockSize: 4096})
		if err != nil {
			t.Fatal(err)
		}
		clock := simclock.NewVirtual()
		drive, err := hdd.NewDrive(m, clock, 1)
		if err != nil {
			t.Fatal(err)
		}
		pattern := fio.SeqRead
		if op == hdd.OpWrite {
			pattern = fio.SeqWrite
		}
		res, err := fio.NewRunner(blockdev.NewDisk(drive), clock).Run(fio.Job{
			Name: "quiet", Pattern: pattern, BlockSize: 4096,
			Span: 1 << 30, Runtime: time.Second, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim := res.ThroughputMBps()
		if diff := math.Abs(pred.ThroughputMBps-sim) / sim; diff > 0.02 {
			t.Fatalf("%v quiet throughput: predicted %.2f MB/s vs simulated %.2f MB/s", op, pred.ThroughputMBps, sim)
		}
	}
}

// TestRetryStatsTruncatedGeometric checks the retry process math against
// first principles at exactly computable points.
func TestRetryStatsTruncatedGeometric(t *testing.T) {
	// p = 1: never retries, never fails.
	if fail, r := retryStats(1, 8); fail != 0 || r != 0 {
		t.Fatalf("p=1: fail=%v retries=%v", fail, r)
	}
	// p = 0: always fails.
	if fail, _ := retryStats(0, 8); fail != 1 {
		t.Fatalf("p=0: fail=%v", fail)
	}
	// p = 0.5, budget 1: fail = 0.25; E[k|success] = (0·0.5 + 1·0.25)/0.75.
	fail, r := retryStats(0.5, 1)
	if math.Abs(fail-0.25) > 1e-12 {
		t.Fatalf("fail = %v, want 0.25", fail)
	}
	if want := 0.25 / 0.75; math.Abs(r-want) > 1e-12 {
		t.Fatalf("E[retries|success] = %v, want %v", r, want)
	}
}

// TestPredictRejectsBadInputs covers the input validation surface.
func TestPredictRejectsBadInputs(t *testing.T) {
	m := hdd.Barracuda500()
	if _, err := Predict(Input{Model: m, Op: hdd.OpRead, BlockSize: 0}); err == nil {
		t.Fatal("zero block size must be rejected")
	}
	if _, err := Predict(Input{Model: m, Op: hdd.OpRead, Offset: m.CapacityBytes, BlockSize: 4096}); err == nil {
		t.Fatal("out-of-capacity access must be rejected")
	}
	composite := hdd.Vibration{
		Freq: 650 * units.Hz, Amplitude: 0.1,
		Partials: []hdd.Partial{{Freq: 1300 * units.Hz, Amplitude: 0.05}},
	}
	if _, err := Predict(Input{Model: m, Vib: composite, Op: hdd.OpRead, BlockSize: 4096}); !errors.Is(err, hdd.ErrCompositeVibration) {
		t.Fatalf("composite vibration must return ErrCompositeVibration, got %v", err)
	}
}

// TestInnerOffsetPredictedMoreVulnerable pins the zoned physics in the
// predictor itself: equal excitation, inner offset, lower success.
func TestInnerOffsetPredictedMoreVulnerable(t *testing.T) {
	m := hdd.Barracuda500()
	vib := hdd.Vibration{Freq: 1200 * units.Hz, Amplitude: 0.18}
	outer, err := Predict(Input{Model: m, Vib: vib, Op: hdd.OpWrite, Offset: 0, BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := Predict(Input{Model: m, Vib: vib, Op: hdd.OpWrite, Offset: m.CapacityBytes - 4096, BlockSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if inner.PerAttempt >= outer.PerAttempt {
		t.Fatalf("inner-track attempts must be less likely to hold: inner %.4f, outer %.4f", inner.PerAttempt, outer.PerAttempt)
	}
}
