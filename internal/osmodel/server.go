// Package osmodel simulates the server operating system the paper crashes
// in Table 3: an Ubuntu-like server whose root filesystem lives on the
// victim drive. The kernel's interaction with storage is reduced to the
// parts that matter for the attack: periodic page-ins of executable pages,
// periodic log flushes, a dmesg ring that records buffer I/O errors, and a
// crash rule — when critical I/O has failed continuously for the crash
// threshold, the system is declared dead (the paper observes the machine
// unable to access any file, including `ls`, with buffer I/O errors in
// dmesg).
package osmodel

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"deepnote/internal/jfs"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// Errors reported by the server.
var (
	// ErrCrashed means the OS has crashed and rejects all work.
	ErrCrashed = errors.New("osmodel: kernel panic - not syncing: I/O failure on root device")
	// ErrNotBooted is returned before Boot completes.
	ErrNotBooted = errors.New("osmodel: server not booted")
	// ErrCommandFailed wraps command execution failures.
	ErrCommandFailed = errors.New("osmodel: command failed")
)

// Config tunes the server model.
type Config struct {
	// PageInInterval is how often the kernel must page in executable or
	// library pages from the root device (default 1 s).
	PageInInterval time.Duration
	// LogInterval is how often syslog flushes to disk (default 2 s).
	LogInterval time.Duration
	// CrashThreshold is how long critical I/O may fail continuously
	// before the system dies (default 80 s, reproducing the paper's
	// ≈81 s Ubuntu time-to-crash).
	CrashThreshold time.Duration
	// DmesgCapacity bounds the kernel ring buffer (default 256 lines).
	DmesgCapacity int
	// Seed drives which pages get touched.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.PageInInterval <= 0 {
		c.PageInInterval = time.Second
	}
	if c.LogInterval <= 0 {
		c.LogInterval = 2 * time.Second
	}
	if c.CrashThreshold <= 0 {
		c.CrashThreshold = 80 * time.Second
	}
	if c.DmesgCapacity <= 0 {
		c.DmesgCapacity = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// system files installed at boot. jfs has a flat root directory, so paths
// use underscores.
var systemFiles = []struct {
	name   string
	blocks int
}{
	{"bin_ls", 8},
	{"bin_cat", 8},
	{"bin_sh", 16},
	{"lib_libc", 64},
	{"etc_config", 1},
}

// Server is a booted OS instance.
type Server struct {
	fs    *jfs.FS
	clock simclock.Clock
	cfg   Config
	rng   *rand.Rand

	dmesg      *Dmesg
	booted     bool
	bootedAt   time.Time
	nextPageIn time.Time
	nextLog    time.Time
	logFile    *jfs.File
	logSeq     int

	failingSince time.Time
	crashed      bool
	crashErr     error
	crashedAt    time.Time
	services     []*Service

	// Stats
	PageIns, PageInErrors int64
	LogWrites, LogErrors  int64
	Commands, CommandErrs int64
	// Hangs counts transitions into the critical-failure state: episodes
	// where root-device I/O started failing continuously (the paper's
	// "system hangs" before the eventual panic).
	Hangs int64
}

// Boot installs the system files (if absent) and starts the server.
func Boot(fs *jfs.FS, clock simclock.Clock, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		fs:    fs,
		clock: clock,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		dmesg: NewDmesg(cfg.DmesgCapacity),
	}
	for _, sf := range systemFiles {
		f, err := fs.Open(sf.name)
		if errors.Is(err, jfs.ErrNotFound) {
			f, err = fs.Create(sf.name)
			if err == nil {
				content := make([]byte, sf.blocks*jfs.BlockSize)
				for i := range content {
					content[i] = byte(i * 31)
				}
				_, err = f.WriteAt(content, 0)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("osmodel: installing %s: %w", sf.name, err)
		}
		_ = f
	}
	lf, err := fs.Open("var_syslog")
	if errors.Is(err, jfs.ErrNotFound) {
		lf, err = fs.Create("var_syslog")
	}
	if err != nil {
		return nil, fmt.Errorf("osmodel: creating syslog: %w", err)
	}
	if err := fs.Sync(); err != nil {
		return nil, fmt.Errorf("osmodel: boot sync: %w", err)
	}
	s.logFile = lf
	s.booted = true
	s.bootedAt = clock.Now()
	s.nextPageIn = clock.Now().Add(cfg.PageInInterval)
	s.nextLog = clock.Now().Add(cfg.LogInterval)
	s.dmesg.Logf(clock.Now(), "Linux version 4.4.0-generic (Ubuntu 16.04-like server model)")
	s.dmesg.Logf(clock.Now(), "EXT4-fs (sda1): mounted filesystem with ordered data mode")
	return s, nil
}

// Crashed reports the crash state.
func (s *Server) Crashed() (bool, error) { return s.crashed, s.crashErr }

// CrashedAt returns the virtual crash time (zero if alive).
func (s *Server) CrashedAt() time.Time { return s.crashedAt }

// Dmesg returns the kernel ring buffer contents.
func (s *Server) Dmesg() []string { return s.dmesg.Lines() }

// PublishMetrics pushes the server's counters into a registry under the
// "osmodel." prefix (no-op on a nil registry).
func (s *Server) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Add("osmodel.page_ins", s.PageIns)
	reg.Add("osmodel.page_in_errors", s.PageInErrors)
	reg.Add("osmodel.log_writes", s.LogWrites)
	reg.Add("osmodel.log_errors", s.LogErrors)
	reg.Add("osmodel.commands", s.Commands)
	reg.Add("osmodel.command_errors", s.CommandErrs)
	reg.Add("osmodel.hangs", s.Hangs)
	reg.Add("osmodel.dmesg_lines", int64(len(s.dmesg.Lines())))
	if s.crashed {
		reg.Add("osmodel.crashes", 1)
	}
}

// Step runs the kernel's periodic work that is due at the current virtual
// time: page-ins and log flushes. The caller advances the clock between
// steps; failed I/O consumes retry time by itself.
func (s *Server) Step() {
	if !s.booted || s.crashed {
		return
	}
	now := s.clock.Now()
	if !now.Before(s.nextPageIn) {
		s.nextPageIn = now.Add(s.cfg.PageInInterval)
		s.pageIn()
	}
	if s.crashed {
		return
	}
	now = s.clock.Now()
	if !now.Before(s.nextLog) {
		s.nextLog = now.Add(s.cfg.LogInterval)
		s.flushLog()
	}
	if !s.crashed {
		s.stepServices()
	}
	s.fs.Tick()
	// The filesystem dying underneath the OS is itself a critical
	// failure condition.
	if aborted, _ := s.fs.Aborted(); aborted {
		s.criticalFailure(fmt.Errorf("journal aborted on root device"))
	}
}

// pageIn simulates demand paging: a read of a random page of a random
// system binary. On real hardware a blocked drive turns these into the
// "Buffer I/O error on dev sda1" stream the paper reports from dmesg.
func (s *Server) pageIn() {
	s.PageIns++
	target := systemFiles[s.rng.Intn(len(systemFiles))]
	f, err := s.fs.Open(target.name)
	if err != nil {
		s.recordReadFailure(target.name, 0, err)
		return
	}
	page := make([]byte, jfs.BlockSize)
	block := int64(s.rng.Intn(target.blocks))
	if _, err := f.ReadAt(page, block*jfs.BlockSize); err != nil {
		s.recordReadFailure(target.name, block, err)
		return
	}
	s.criticalSuccess()
}

// flushLog appends a syslog line and forces it toward the disk.
func (s *Server) flushLog() {
	s.LogWrites++
	s.logSeq++
	line := fmt.Sprintf("%s server[1]: heartbeat %d\n", s.clock.Now().Format("Jan 02 15:04:05"), s.logSeq)
	if _, err := s.logFile.Append([]byte(line)); err != nil {
		s.LogErrors++
		s.recordWriteFailure("var_syslog", 0, err)
		return
	}
	s.criticalSuccess()
}

// recordReadFailure logs a failed page-in with the read-path dmesg wording
// (the kernel reports "async page read" for reads; "lost async page write"
// is the writeback message and used to be emitted here for both paths).
func (s *Server) recordReadFailure(name string, block int64, err error) {
	s.PageInErrors++
	s.dmesg.Logf(s.clock.Now(), "Buffer I/O error on dev sda1, logical block %d, async page read (%s)", block, name)
	s.criticalFailure(err)
}

// recordWriteFailure logs a failed writeback with the write-path dmesg
// wording. Write failures are counted by their own callers (LogErrors),
// not in PageInErrors.
func (s *Server) recordWriteFailure(name string, block int64, err error) {
	s.dmesg.Logf(s.clock.Now(), "Buffer I/O error on dev sda1, logical block %d, lost async page write (%s)", block, name)
	s.criticalFailure(err)
}

func (s *Server) criticalSuccess() { s.failingSince = time.Time{} }

func (s *Server) criticalFailure(cause error) {
	now := s.clock.Now()
	if s.failingSince.IsZero() {
		s.failingSince = now
		s.Hangs++
	}
	if now.Sub(s.failingSince) >= s.cfg.CrashThreshold {
		s.crashed = true
		s.crashedAt = now
		s.crashErr = fmt.Errorf("%w: %v", ErrCrashed, cause)
		s.dmesg.Logf(now, "EXT4-fs error (device sda1): unable to read superblock")
		s.dmesg.Logf(now, "Kernel panic - not syncing: I/O failure on root device")
	}
}

// RunCommand executes a shell command by name: the binary must page in
// from the root filesystem, exactly why `ls` stops working in the paper
// once the drive is unreachable.
func (s *Server) RunCommand(name string) error {
	if !s.booted {
		return ErrNotBooted
	}
	if s.crashed {
		return s.crashErr
	}
	s.Commands++
	bin := "bin_" + name
	f, err := s.fs.Open(bin)
	if err != nil {
		s.CommandErrs++
		return fmt.Errorf("%w: %s: %v", ErrCommandFailed, name, err)
	}
	// Page in the whole binary.
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(buf, 0); err != nil {
		s.CommandErrs++
		s.recordReadFailure(bin, 0, err)
		return fmt.Errorf("%w: %s: %v", ErrCommandFailed, name, err)
	}
	s.criticalSuccess()
	return nil
}

// Uptime returns time since boot (until crash, if crashed).
func (s *Server) Uptime() time.Duration {
	if !s.booted {
		return 0
	}
	end := s.clock.Now()
	if s.crashed {
		end = s.crashedAt
	}
	return end.Sub(s.bootedAt)
}

// Dmesg is a bounded kernel message ring buffer.
type Dmesg struct {
	lines []string
	cap   int
}

// NewDmesg returns a ring with the given capacity.
func NewDmesg(capacity int) *Dmesg {
	return &Dmesg{cap: capacity}
}

// Logf appends a formatted, timestamped line, evicting the oldest past
// capacity.
func (d *Dmesg) Logf(ts time.Time, format string, args ...any) {
	line := fmt.Sprintf("[%10.6f] ", float64(ts.UnixNano()%1e12)/1e9) + fmt.Sprintf(format, args...)
	d.lines = append(d.lines, line)
	if len(d.lines) > d.cap {
		d.lines = d.lines[len(d.lines)-d.cap:]
	}
}

// Lines returns a copy of the buffer contents.
func (d *Dmesg) Lines() []string {
	return append([]string(nil), d.lines...)
}
