package osmodel

import (
	"errors"
	"strings"
	"testing"
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/jfs"
	"deepnote/internal/simclock"
)

type rig struct {
	clock *simclock.Virtual
	disk  *blockdev.Disk
	fs    *jfs.FS
	srv   *Server
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	clock := simclock.NewVirtual()
	drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 17)
	if err != nil {
		t.Fatal(err)
	}
	disk := blockdev.NewDisk(drive)
	if err := jfs.Mkfs(disk, jfs.MkfsOptions{Blocks: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	fs, err := jfs.Mount(disk, clock, jfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Boot(fs, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, disk: disk, fs: fs, srv: srv}
}

func TestBootInstallsSystemFiles(t *testing.T) {
	r := newRig(t, Config{})
	names := r.fs.List()
	joined := strings.Join(names, " ")
	for _, want := range []string{"bin_ls", "bin_sh", "lib_libc", "var_syslog"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing system file %s in %v", want, names)
		}
	}
	if crashed, _ := r.srv.Crashed(); crashed {
		t.Fatal("fresh server crashed")
	}
	if len(r.srv.Dmesg()) == 0 {
		t.Fatal("boot should log to dmesg")
	}
}

func TestHealthyServerRuns(t *testing.T) {
	r := newRig(t, Config{})
	for i := 0; i < 120; i++ {
		r.clock.Advance(500 * time.Millisecond)
		r.srv.Step()
	}
	if crashed, _ := r.srv.Crashed(); crashed {
		t.Fatal("healthy server crashed")
	}
	if r.srv.PageIns == 0 || r.srv.LogWrites == 0 {
		t.Fatalf("periodic work did not run: %d page-ins, %d log writes", r.srv.PageIns, r.srv.LogWrites)
	}
	if r.srv.PageInErrors != 0 {
		t.Fatalf("unexpected I/O errors: %d", r.srv.PageInErrors)
	}
}

func TestRunCommand(t *testing.T) {
	r := newRig(t, Config{})
	if err := r.srv.RunCommand("ls"); err != nil {
		t.Fatal(err)
	}
	if err := r.srv.RunCommand("nonexistent"); !errors.Is(err, ErrCommandFailed) {
		t.Fatalf("missing binary: %v", err)
	}
	if r.srv.Commands != 2 {
		t.Fatalf("commands = %d", r.srv.Commands)
	}
}

func TestCrashUnderProlongedAttack(t *testing.T) {
	// Table 3's Ubuntu row: buffer I/O errors accumulate until the OS
	// dies after ≈ the crash threshold. Shortened threshold for speed.
	r := newRig(t, Config{CrashThreshold: 15 * time.Second})
	attackStart := r.clock.Now()
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	for i := 0; i < 600; i++ {
		r.clock.Advance(250 * time.Millisecond)
		r.srv.Step()
		if crashed, _ := r.srv.Crashed(); crashed {
			break
		}
	}
	crashed, crashErr := r.srv.Crashed()
	if !crashed {
		t.Fatal("server did not crash under attack")
	}
	if !errors.Is(crashErr, ErrCrashed) {
		t.Fatalf("crash error = %v", crashErr)
	}
	ttc := r.srv.CrashedAt().Sub(attackStart)
	if ttc < 15*time.Second || ttc > 30*time.Second {
		t.Fatalf("time to crash = %v, want ≈ threshold", ttc)
	}
	dmesg := strings.Join(r.srv.Dmesg(), "\n")
	if !strings.Contains(dmesg, "Buffer I/O error on dev sda1") {
		t.Fatal("dmesg missing buffer I/O errors")
	}
	if !strings.Contains(dmesg, "Kernel panic") {
		t.Fatal("dmesg missing panic line")
	}
	// `ls` now fails, like the paper observes.
	if err := r.srv.RunCommand("ls"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("ls after crash: %v", err)
	}
}

func TestLsFailsDuringAttackBeforeCrash(t *testing.T) {
	r := newRig(t, Config{})
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	if err := r.srv.RunCommand("ls"); !errors.Is(err, ErrCommandFailed) {
		t.Fatalf("ls during attack: %v", err)
	}
}

func TestRecoveryIfAttackStops(t *testing.T) {
	r := newRig(t, Config{CrashThreshold: 60 * time.Second})
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	for i := 0; i < 10; i++ {
		r.clock.Advance(500 * time.Millisecond)
		r.srv.Step()
	}
	if r.srv.PageInErrors == 0 {
		t.Fatal("expected I/O errors during attack")
	}
	r.disk.Drive().SetVibration(hdd.Quiet())
	for i := 0; i < 10; i++ {
		r.clock.Advance(time.Second)
		r.srv.Step()
	}
	if crashed, _ := r.srv.Crashed(); crashed {
		t.Fatal("server crashed despite recovery")
	}
	if err := r.srv.RunCommand("ls"); err != nil {
		t.Fatalf("ls after recovery: %v", err)
	}
}

func TestUptime(t *testing.T) {
	r := newRig(t, Config{})
	r.clock.Advance(10 * time.Second)
	if got := r.srv.Uptime(); got != 10*time.Second {
		t.Fatalf("uptime = %v", got)
	}
}

func TestStepBeforeBootAndAfterCrashIsSafe(t *testing.T) {
	var s Server
	s.Step() // must not panic
	if err := s.RunCommand("ls"); !errors.Is(err, ErrNotBooted) {
		t.Fatalf("unbooted command: %v", err)
	}
}

func TestDmesgRingEviction(t *testing.T) {
	d := NewDmesg(3)
	// Drive the ring off the virtual clock, not time.Now(): wall-clock
	// reads make the test's timestamps scheduling-dependent under a
	// parallel `go test`, and this package must stay hermetic.
	base := simclock.NewVirtual().Now()
	for i := 0; i < 5; i++ {
		d.Logf(base, "line %d", i)
	}
	lines := d.Lines()
	if len(lines) != 3 {
		t.Fatalf("ring size = %d, want 3", len(lines))
	}
	if !strings.Contains(lines[0], "line 2") || !strings.Contains(lines[2], "line 4") {
		t.Fatalf("wrong eviction: %v", lines)
	}
}

func TestBootIdempotentAcrossRemount(t *testing.T) {
	r := newRig(t, Config{})
	if err := r.fs.Unmount(); err != nil {
		t.Fatal(err)
	}
	fs2, err := jfs.Mount(r.disk, r.clock, jfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := Boot(fs2, r.clock, Config{})
	if err != nil {
		t.Fatalf("reboot on existing root: %v", err)
	}
	if err := srv2.RunCommand("ls"); err != nil {
		t.Fatal(err)
	}
}
