package osmodel

import (
	"fmt"
	"time"

	"deepnote/internal/jfs"
)

// ServiceState is a managed service's lifecycle state.
type ServiceState int

// Service states.
const (
	ServiceRunning ServiceState = iota
	ServiceRestarting
	ServiceFailed
)

// String names the state.
func (s ServiceState) String() string {
	switch s {
	case ServiceRunning:
		return "running"
	case ServiceRestarting:
		return "restarting"
	case ServiceFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ServiceSpec declares a managed service: a daemon whose health depends on
// periodically paging in its binary and appending to its log — the two
// storage dependencies that make services collateral damage of the attack.
type ServiceSpec struct {
	// Name is the unit name (also names its on-disk binary "svc_<name>").
	Name string
	// Interval is the service's periodic work cadence.
	Interval time.Duration
	// BinaryBlocks sizes the service binary.
	BinaryBlocks int
	// MaxRestarts bounds restart attempts before the unit fails
	// permanently (systemd-style start limit).
	MaxRestarts int
}

// Service is a managed instance.
type Service struct {
	Spec     ServiceSpec
	State    ServiceState
	Restarts int
	nextWork time.Time
	logSeq   int
}

// StandardServices is a typical server's unit set.
func StandardServices() []ServiceSpec {
	return []ServiceSpec{
		{Name: "sshd", Interval: 3 * time.Second, BinaryBlocks: 8, MaxRestarts: 3},
		{Name: "cron", Interval: 5 * time.Second, BinaryBlocks: 4, MaxRestarts: 3},
		{Name: "httpd", Interval: time.Second, BinaryBlocks: 16, MaxRestarts: 5},
	}
}

// StartServices installs and starts the given units on the server.
func (s *Server) StartServices(specs []ServiceSpec) error {
	if !s.booted {
		return ErrNotBooted
	}
	for _, spec := range specs {
		bin := "svc_" + spec.Name
		f, err := s.fs.Open(bin)
		if err != nil {
			f, err = s.fs.Create(bin)
			if err == nil {
				content := make([]byte, spec.BinaryBlocks*jfs.BlockSize)
				for i := range content {
					content[i] = byte(i * 17)
				}
				_, err = f.WriteAt(content, 0)
			}
		}
		if err != nil {
			return fmt.Errorf("osmodel: installing service %s: %w", spec.Name, err)
		}
		s.services = append(s.services, &Service{
			Spec:     spec,
			State:    ServiceRunning,
			nextWork: s.clock.Now().Add(spec.Interval),
		})
		s.dmesg.Logf(s.clock.Now(), "systemd[1]: Started %s.service", spec.Name)
	}
	return nil
}

// Services returns the managed units (live pointers; callers must not
// mutate).
func (s *Server) Services() []*Service { return s.services }

// ServiceByName finds a unit.
func (s *Server) ServiceByName(name string) (*Service, bool) {
	for _, svc := range s.services {
		if svc.Spec.Name == name {
			return svc, true
		}
	}
	return nil, false
}

// stepServices runs due service work: each working service pages in a
// block of its binary and appends a log line. An I/O failure sends the
// unit through restart; exhausting MaxRestarts fails it permanently.
func (s *Server) stepServices() {
	now := s.clock.Now()
	for _, svc := range s.services {
		if svc.State == ServiceFailed || now.Before(svc.nextWork) {
			continue
		}
		svc.nextWork = now.Add(svc.Spec.Interval)
		if err := s.serviceWork(svc); err != nil {
			switch svc.State {
			case ServiceRunning:
				svc.State = ServiceRestarting
				svc.Restarts++
				s.dmesg.Logf(now, "systemd[1]: %s.service: main process exited, scheduling restart", svc.Spec.Name)
			case ServiceRestarting:
				svc.Restarts++
			}
			if svc.Restarts > svc.Spec.MaxRestarts {
				svc.State = ServiceFailed
				s.dmesg.Logf(now, "systemd[1]: %s.service: start request repeated too quickly, refusing", svc.Spec.Name)
			}
			continue
		}
		if svc.State == ServiceRestarting {
			svc.State = ServiceRunning
			s.dmesg.Logf(now, "systemd[1]: %s.service: restarted", svc.Spec.Name)
		}
		s.criticalSuccess()
	}
}

// serviceWork performs one unit's periodic storage-dependent work. Each
// failure is recorded with the dmesg wording of the path that failed:
// paging in the unit's binary is a read, appending its log is a write.
func (s *Server) serviceWork(svc *Service) error {
	bin, err := s.fs.Open("svc_" + svc.Spec.Name)
	if err != nil {
		s.recordReadFailure("svc_"+svc.Spec.Name, 0, err)
		return err
	}
	page := make([]byte, jfs.BlockSize)
	block := int64(svc.logSeq % svc.Spec.BinaryBlocks)
	if _, err := bin.ReadAt(page, block*jfs.BlockSize); err != nil {
		s.recordReadFailure("svc_"+svc.Spec.Name, block, err)
		return err
	}
	svc.logSeq++
	line := fmt.Sprintf("%s %s[%d]: tick %d\n",
		s.clock.Now().Format("Jan 02 15:04:05"), svc.Spec.Name, 100+svc.logSeq, svc.logSeq)
	if _, err := s.logFile.Append([]byte(line)); err != nil {
		s.recordWriteFailure("var_syslog", 0, err)
		return err
	}
	return nil
}

// RunningServices counts healthy units.
func (s *Server) RunningServices() int {
	n := 0
	for _, svc := range s.services {
		if svc.State == ServiceRunning {
			n++
		}
	}
	return n
}
