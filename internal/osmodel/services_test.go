package osmodel

import (
	"strings"
	"testing"
	"time"

	"deepnote/internal/hdd"
)

func startServices(t *testing.T, r *rig) {
	t.Helper()
	if err := r.srv.StartServices(StandardServices()); err != nil {
		t.Fatal(err)
	}
}

func TestServicesRunHealthy(t *testing.T) {
	r := newRig(t, Config{})
	startServices(t, r)
	if got := r.srv.RunningServices(); got != 3 {
		t.Fatalf("running = %d, want 3", got)
	}
	for i := 0; i < 40; i++ {
		r.clock.Advance(500 * time.Millisecond)
		r.srv.Step()
	}
	if got := r.srv.RunningServices(); got != 3 {
		t.Fatalf("running after workload = %d, want 3", got)
	}
	svc, ok := r.srv.ServiceByName("httpd")
	if !ok {
		t.Fatal("httpd missing")
	}
	if svc.Restarts != 0 || svc.logSeq == 0 {
		t.Fatalf("httpd state: %+v", svc)
	}
	dmesg := strings.Join(r.srv.Dmesg(), "\n")
	if !strings.Contains(dmesg, "Started httpd.service") {
		t.Fatal("service start not logged")
	}
}

func TestServicesFailPermanentlyUnderSustainedAttack(t *testing.T) {
	r := newRig(t, Config{CrashThreshold: time.Hour}) // isolate service behaviour
	startServices(t, r)
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	for i := 0; i < 120; i++ {
		r.clock.Advance(time.Second)
		r.srv.Step()
	}
	if got := r.srv.RunningServices(); got != 0 {
		t.Fatalf("running under sustained attack = %d, want 0", got)
	}
	failed := 0
	for _, svc := range r.srv.Services() {
		if svc.State == ServiceFailed {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("failed services = %d, want 3", failed)
	}
	dmesg := strings.Join(r.srv.Dmesg(), "\n")
	if !strings.Contains(dmesg, "scheduling restart") {
		t.Fatal("restarts not logged")
	}
	if !strings.Contains(dmesg, "refusing") {
		t.Fatal("start-limit refusal not logged")
	}
}

func TestServicesRecoverFromShortBurst(t *testing.T) {
	r := newRig(t, Config{CrashThreshold: time.Hour})
	startServices(t, r)
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	for i := 0; i < 3; i++ {
		r.clock.Advance(time.Second)
		r.srv.Step()
	}
	r.disk.Drive().SetVibration(hdd.Quiet())
	for i := 0; i < 20; i++ {
		r.clock.Advance(time.Second)
		r.srv.Step()
	}
	if got := r.srv.RunningServices(); got != 3 {
		states := make([]string, 0, 3)
		for _, svc := range r.srv.Services() {
			states = append(states, svc.Spec.Name+"="+svc.State.String())
		}
		t.Fatalf("running after recovery = %d (%v), want 3", got, states)
	}
}

func TestStartServicesRequiresBoot(t *testing.T) {
	var s Server
	if err := s.StartServices(StandardServices()); err != ErrNotBooted {
		t.Fatalf("got %v", err)
	}
}

func TestServiceStateStrings(t *testing.T) {
	if ServiceRunning.String() != "running" || ServiceFailed.String() != "failed" ||
		ServiceRestarting.String() != "restarting" || ServiceState(9).String() == "" {
		t.Fatal("state names")
	}
}
