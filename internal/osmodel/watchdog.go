package osmodel

import (
	"time"

	"deepnote/internal/blockdev"
	"deepnote/internal/jfs"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// WatchdogConfig tunes the reboot supervisor.
type WatchdogConfig struct {
	// RebootDelay models crash detection plus firmware/boot latency: how
	// long after a crash the first reboot attempt starts, and how long
	// between retries while the device stays unreachable (default 5 s).
	RebootDelay time.Duration
	// MaxReboots bounds reboot attempts per crash episode (0 = unlimited).
	MaxReboots int
	// FSConfig is the jfs configuration used when remounting the root
	// filesystem.
	FSConfig jfs.Config
	// OnRepair runs before the remount, for storage-level recovery (e.g.
	// probing and resilvering a RAID array). A returned error aborts the
	// attempt; the watchdog retries after RebootDelay.
	OnRepair func() error
	// OnRecover runs after the OS boots, for application-level recovery
	// (e.g. reopening a database so its WAL replays). A returned error
	// counts the reboot as failed.
	OnRecover func(fs *jfs.FS) error
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.RebootDelay <= 0 {
		c.RebootDelay = 5 * time.Second
	}
	return c
}

// Watchdog supervises a Server and drives the full recovery chain after a
// kernel panic: storage repair → remount (journal replay) → fsck → boot →
// application recovery. The paper's victim stays down forever once it
// crashes; this is the missing piece a hardened deployment would have.
type Watchdog struct {
	dev    blockdev.Device
	clock  simclock.Clock
	srvCfg Config
	cfg    WatchdogConfig

	srv *Server
	fs  *jfs.FS

	crashSeenAt time.Time
	nextAttempt time.Time
	attempts    int

	// Stats
	// Reboots counts successful recoveries; FailedReboots counts attempts
	// that died partway down the chain (typically because the attack was
	// still in progress).
	Reboots, FailedReboots int64
	// Downtime sums crash-to-recovery virtual time across episodes.
	Downtime time.Duration
	// ReplayedTx counts journal transactions replayed across reboots;
	// FsckProblems counts findings from post-replay checks.
	ReplayedTx   int64
	FsckProblems int64
}

// NewWatchdog builds a supervisor for a server rooted on dev. Call Adopt
// with the initially booted server, then Step on every simulation tick.
func NewWatchdog(dev blockdev.Device, clock simclock.Clock, srvCfg Config, cfg WatchdogConfig) *Watchdog {
	return &Watchdog{dev: dev, clock: clock, srvCfg: srvCfg, cfg: cfg.withDefaults()}
}

// Adopt starts supervising a running server and its filesystem.
func (w *Watchdog) Adopt(srv *Server, fs *jfs.FS) {
	w.srv = srv
	w.fs = fs
	w.crashSeenAt = time.Time{}
	w.attempts = 0
}

// Server returns the currently supervised server (replaced after reboots).
func (w *Watchdog) Server() *Server { return w.srv }

// FS returns the current root filesystem (replaced after reboots).
func (w *Watchdog) FS() *jfs.FS { return w.fs }

// Step checks the supervised server and, when it has crashed, attempts the
// recovery chain once per RebootDelay. Safe to call every tick.
func (w *Watchdog) Step() {
	if w.srv == nil {
		return
	}
	crashed, _ := w.srv.Crashed()
	if !crashed {
		return
	}
	now := w.clock.Now()
	if w.crashSeenAt.IsZero() {
		w.crashSeenAt = now
		w.nextAttempt = now.Add(w.cfg.RebootDelay)
		w.attempts = 0
		return
	}
	if now.Before(w.nextAttempt) {
		return
	}
	if w.cfg.MaxReboots > 0 && w.attempts >= w.cfg.MaxReboots {
		return
	}
	w.attempts++
	crashedAt := w.srv.CrashedAt()
	if w.tryReboot() {
		// Downtime runs from the kernel panic, not from detection.
		w.Downtime += w.clock.Now().Sub(crashedAt)
		w.Reboots++
		// The new server is adopted inside tryReboot.
		w.crashSeenAt = time.Time{}
		return
	}
	w.FailedReboots++
	w.nextAttempt = w.clock.Now().Add(w.cfg.RebootDelay)
}

// tryReboot runs the recovery chain. Any failing stage (a device still
// under attack fails the remount's journal replay) aborts the attempt
// without replacing the supervised server.
func (w *Watchdog) tryReboot() bool {
	if w.cfg.OnRepair != nil {
		if err := w.cfg.OnRepair(); err != nil {
			return false
		}
	}
	fs, err := jfs.Mount(w.dev, w.clock, w.cfg.FSConfig)
	if err != nil {
		return false
	}
	report := fs.Fsck()
	srv, err := Boot(fs, w.clock, w.srvCfg)
	if err != nil {
		return false
	}
	if w.cfg.OnRecover != nil {
		if err := w.cfg.OnRecover(fs); err != nil {
			return false
		}
	}
	w.ReplayedTx += int64(fs.Replays)
	w.FsckProblems += int64(len(report.Problems))
	oldCrashedAt := w.srv.CrashedAt()
	w.fs = fs
	w.srv = srv
	// Reboot banner: the recovery is visible in the new kernel's dmesg.
	srv.dmesg.Logf(w.clock.Now(), "watchdog: system recovered after %v downtime (journal replayed %d tx)",
		w.clock.Now().Sub(oldCrashedAt), fs.Replays)
	return true
}

// PublishMetrics pushes the watchdog's counters into a registry under the
// "osmodel.watchdog." prefix (no-op on a nil registry).
func (w *Watchdog) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Add("osmodel.watchdog.reboots", w.Reboots)
	reg.Add("osmodel.watchdog.failed_reboots", w.FailedReboots)
	reg.Add("osmodel.watchdog.downtime_ns_total", int64(w.Downtime))
	reg.Add("osmodel.watchdog.replayed_tx", w.ReplayedTx)
	reg.Add("osmodel.watchdog.fsck_problems", w.FsckProblems)
}
