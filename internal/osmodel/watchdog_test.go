package osmodel

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"deepnote/internal/hdd"
	"deepnote/internal/jfs"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

func TestReadFailureDmesgWording(t *testing.T) {
	// Regression: page-in (read-path) failures used to log the writeback
	// message "lost async page write". The kernel says "async page read"
	// for reads.
	r := newRig(t, Config{})
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	if err := r.srv.RunCommand("ls"); err == nil {
		t.Fatal("attacked read should fail")
	}
	dmesg := strings.Join(r.srv.Dmesg(), "\n")
	if !strings.Contains(dmesg, "async page read (bin_ls)") {
		t.Fatalf("read failure missing read wording:\n%s", dmesg)
	}
	if strings.Contains(dmesg, "lost async page write") {
		t.Fatalf("read failure logged write wording:\n%s", dmesg)
	}
}

func TestWriteFailureDmesgWordingAndCounters(t *testing.T) {
	r := newRig(t, Config{})
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	// Force a log flush (write path) without any page-in: advance less
	// than a page-in interval past the log deadline is impossible (log
	// interval > page-in interval), so call the flush directly.
	r.srv.flushLog()
	if r.srv.LogErrors != 1 {
		t.Fatalf("log errors = %d", r.srv.LogErrors)
	}
	// Bugfix: write-path failures must not count as page-in errors.
	if r.srv.PageInErrors != 0 {
		t.Fatalf("write failure counted as page-in error (%d)", r.srv.PageInErrors)
	}
	dmesg := strings.Join(r.srv.Dmesg(), "\n")
	if !strings.Contains(dmesg, "lost async page write (var_syslog)") {
		t.Fatalf("write failure missing write wording:\n%s", dmesg)
	}
	if strings.Contains(dmesg, "async page read") {
		t.Fatalf("write failure logged read wording:\n%s", dmesg)
	}
}

func TestCrashThresholdExactBoundary(t *testing.T) {
	// The crash rule is >= CrashThreshold of continuous failure: one
	// nanosecond under must stay alive, the exact boundary must crash.
	r := newRig(t, Config{CrashThreshold: 10 * time.Second})
	cause := fmt.Errorf("boundary probe")
	r.srv.criticalFailure(cause) // opens the failure window
	r.clock.Advance(10*time.Second - time.Nanosecond)
	r.srv.criticalFailure(cause)
	if crashed, _ := r.srv.Crashed(); crashed {
		t.Fatal("crashed one nanosecond before the threshold")
	}
	r.clock.Advance(time.Nanosecond)
	r.srv.criticalFailure(cause)
	crashed, err := r.srv.Crashed()
	if !crashed {
		t.Fatal("failure window exactly equal to CrashThreshold must crash")
	}
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash error = %v", err)
	}
	if r.srv.Hangs != 1 {
		t.Fatalf("hangs = %d, want one continuous episode", r.srv.Hangs)
	}
}

func TestDmesgRingAtCapacity(t *testing.T) {
	d := NewDmesg(4)
	base := simclock.NewVirtual().Now()
	// Exactly at capacity: nothing evicted.
	for i := 0; i < 4; i++ {
		d.Logf(base, "line %d", i)
	}
	lines := d.Lines()
	if len(lines) != 4 || !strings.Contains(lines[0], "line 0") {
		t.Fatalf("at capacity: %v", lines)
	}
	// One past capacity: exactly the oldest line goes.
	d.Logf(base, "line 4")
	lines = d.Lines()
	if len(lines) != 4 {
		t.Fatalf("ring grew past capacity: %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "line 1") || !strings.Contains(lines[3], "line 4") {
		t.Fatalf("wrong wraparound: %v", lines)
	}
}

func TestWatchdogRebootsThroughRecoveryChain(t *testing.T) {
	r := newRig(t, Config{CrashThreshold: 15 * time.Second})
	repairs, recovers := 0, 0
	wd := NewWatchdog(r.disk, r.clock, Config{CrashThreshold: 15 * time.Second}, WatchdogConfig{
		RebootDelay: 5 * time.Second,
		OnRepair:    func() error { repairs++; return nil },
		OnRecover:   func(fs *jfs.FS) error { recovers++; return nil },
	})
	wd.Adopt(r.srv, r.fs)

	// Prolonged attack: the OS crashes, and reboot attempts keep failing
	// while the drive is unreachable.
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	for i := 0; i < 200; i++ {
		r.clock.Advance(250 * time.Millisecond)
		wd.Server().Step()
		wd.Step()
	}
	if crashed, _ := wd.Server().Crashed(); !crashed {
		t.Fatal("server should be down during the attack")
	}
	if wd.FailedReboots == 0 {
		t.Fatal("reboot attempts during the attack should fail")
	}
	if wd.Reboots != 0 {
		t.Fatal("no reboot can succeed while the device is unreachable")
	}

	// Attack ends: the next attempt walks the whole chain and succeeds.
	r.disk.Drive().SetVibration(hdd.Quiet())
	for i := 0; i < 60; i++ {
		r.clock.Advance(250 * time.Millisecond)
		wd.Server().Step()
		wd.Step()
	}
	if wd.Reboots != 1 {
		t.Fatalf("reboots = %d, failed = %d", wd.Reboots, wd.FailedReboots)
	}
	if crashed, _ := wd.Server().Crashed(); crashed {
		t.Fatal("recovered server reports crashed")
	}
	if wd.Server() == r.srv {
		t.Fatal("watchdog did not replace the crashed server")
	}
	if wd.Downtime <= 0 {
		t.Fatalf("downtime = %v", wd.Downtime)
	}
	if repairs == 0 || recovers != 1 {
		t.Fatalf("repairs = %d, recovers = %d", repairs, recovers)
	}
	// The recovered system serves commands again.
	if err := wd.Server().RunCommand("ls"); err != nil {
		t.Fatalf("ls after recovery: %v", err)
	}
	dmesg := strings.Join(wd.Server().Dmesg(), "\n")
	if !strings.Contains(dmesg, "watchdog: system recovered") {
		t.Fatalf("recovery banner missing:\n%s", dmesg)
	}
}

func TestWatchdogRespectsMaxReboots(t *testing.T) {
	r := newRig(t, Config{CrashThreshold: 10 * time.Second})
	wd := NewWatchdog(r.disk, r.clock, Config{}, WatchdogConfig{
		RebootDelay: 2 * time.Second,
		MaxReboots:  3,
	})
	wd.Adopt(r.srv, r.fs)
	r.disk.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 2.3})
	for i := 0; i < 400; i++ {
		r.clock.Advance(250 * time.Millisecond)
		wd.Server().Step()
		wd.Step()
	}
	if wd.FailedReboots != 3 {
		t.Fatalf("failed reboots = %d, want capped at 3", wd.FailedReboots)
	}
}

func TestWatchdogPublishMetrics(t *testing.T) {
	r := newRig(t, Config{})
	wd := NewWatchdog(r.disk, r.clock, Config{}, WatchdogConfig{})
	wd.Adopt(r.srv, r.fs)
	reg := metrics.NewRegistry()
	wd.PublishMetrics(reg)
	snap := reg.Snapshot()
	for _, key := range []string{
		"osmodel.watchdog.reboots", "osmodel.watchdog.failed_reboots",
		"osmodel.watchdog.downtime_ns_total",
	} {
		if _, ok := snap.Counters[key]; !ok {
			t.Fatalf("key %s missing", key)
		}
	}
	wd.PublishMetrics(nil) // must not panic
}
