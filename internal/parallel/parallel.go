// Package parallel is the experiment fan-out engine: a bounded worker pool
// that runs independent simulation tasks (sweep points, fleet containers,
// ablation variants, duty-cycle grid cells) across CPUs while preserving
// the exact results of the serial path. Three properties make it safe to
// drop into any experiment grid:
//
//   - Order preservation: results come back indexed by task, never by
//     completion order, so reports and tables are byte-identical to a
//     serial run.
//   - Deterministic seeding: SeedFor derives a per-task seed from a base
//     seed and the task index with a splitmix64 mix, so stochastic tasks
//     reproduce bit-for-bit regardless of worker count or scheduling.
//   - First-error cancellation: the first task error cancels the shared
//     context, remaining tasks are abandoned, and that error is returned.
//
// Each task must build its own testbed/drive/clock instances; the engine
// shares nothing between tasks beyond the read-only inputs the caller
// closes over.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"deepnote/internal/metrics"
)

// DefaultWorkers resolves a worker-count request: values ≤ 0 mean "one
// worker per available CPU" (runtime.GOMAXPROCS(0)).
func DefaultWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SeedFor derives a deterministic per-task seed from a base seed and a
// task index using the splitmix64 finalizer. The derivation depends only
// on (base, index) — never on worker count or scheduling — so a parallel
// grid reproduces bit-for-bit at any parallelism. The result is never
// zero, because the simulation's option structs treat a zero seed as
// "substitute the default".
func SeedFor(base int64, index int) int64 {
	z := uint64(base) + (uint64(index)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return int64(z)
}

// Run fans tasks out over a pool of workers and returns one result per
// task, in task order. workers ≤ 0 selects DefaultWorkers. fn receives the
// pool context, the task index, and the task; if any call returns an
// error, the context is cancelled, in-flight tasks finish or bail on their
// own, queued tasks never start, and Run returns the first error observed
// (by completion time). A cancelled parent context aborts the pool the
// same way.
func Run[T, R any](ctx context.Context, tasks []T, workers int, fn func(ctx context.Context, index int, task T) (R, error)) ([]R, error) {
	if len(tasks) == 0 {
		return nil, ctx.Err()
	}
	workers = DefaultWorkers(workers)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]R, len(tasks))
	var (
		next     atomic.Int64
		failOnce sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		failOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				r, err := fn(ctx, i, tasks[i])
				if err != nil {
					fail(err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// RunObserved is Run with engine-level observability: it publishes
// "parallel.runs", "parallel.tasks", and (on error) "parallel.cancellations"
// counters into the registry. The published values depend only on the task
// list and the outcome — never on scheduling or worker count — so
// instrumented grids stay bit-identical at any parallelism. A nil registry
// makes it exactly Run.
func RunObserved[T, R any](ctx context.Context, tasks []T, workers int, reg *metrics.Registry, fn func(ctx context.Context, index int, task T) (R, error)) ([]R, error) {
	out, err := Run(ctx, tasks, workers, fn)
	if reg != nil && len(tasks) > 0 {
		reg.Add("parallel.runs", 1)
		reg.Add("parallel.tasks", int64(len(tasks)))
		if err != nil {
			reg.Add("parallel.cancellations", 1)
		}
	}
	return out, err
}

// Map is Run without cancellation plumbing, for grids whose tasks cannot
// fail early: it runs fn over tasks with the given parallelism and returns
// the results in task order.
func Map[T, R any](tasks []T, workers int, fn func(index int, task T) R) []R {
	out, _ := Run(context.Background(), tasks, workers, func(_ context.Context, i int, t T) (R, error) {
		return fn(i, t), nil
	})
	return out
}

// Indices returns [0, n) as a task slice, for grids that are naturally
// indexed rather than backed by a materialized slice.
func Indices(n int) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
