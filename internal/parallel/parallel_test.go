package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPreservesOrder(t *testing.T) {
	tasks := Indices(100)
	for _, workers := range []int{1, 2, 8, 100} {
		got, err := Run(context.Background(), tasks, workers, func(_ context.Context, i, task int) (int, error) {
			return task * task, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunIdenticalAcrossWorkerCounts(t *testing.T) {
	// A stochastic task seeded via SeedFor must reproduce bit-for-bit at
	// any parallelism: the engine's central guarantee.
	const base = 42
	task := func(_ context.Context, i, _ int) (float64, error) {
		rng := rand.New(rand.NewSource(SeedFor(base, i)))
		sum := 0.0
		for k := 0; k < 100; k++ {
			sum += rng.Float64()
		}
		return sum, nil
	}
	ref, err := Run(context.Background(), Indices(64), 1, task)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		got, err := Run(context.Background(), Indices(64), workers, task)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: results diverge from serial run", workers)
		}
	}
}

func TestRunPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(context.Background(), Indices(50), 4, func(_ context.Context, i, _ int) (int, error) {
		if i == 7 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunErrorCancelsRemainingTasks(t *testing.T) {
	var started atomic.Int64
	_, err := Run(context.Background(), Indices(10_000), 2, func(ctx context.Context, i, _ int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("first task fails")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n >= 10_000 {
		t.Fatalf("all %d tasks ran despite early failure", n)
	}
}

func TestRunRespectsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Indices(100), 4, func(ctx context.Context, i, _ int) (int, error) {
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunEmptyTasks(t *testing.T) {
	got, err := Run(context.Background(), nil, 4, func(_ context.Context, i, task int) (int, error) {
		return task, nil
	})
	if err != nil || got != nil {
		t.Fatalf("empty run = (%v, %v), want (nil, nil)", got, err)
	}
}

func TestRunActuallyRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-CPU environment")
	}
	// Two tasks that each need the other to start before finishing can
	// only complete when the pool runs them simultaneously.
	gate := make(chan struct{}, 2)
	_, err := Run(context.Background(), Indices(2), 2, func(ctx context.Context, i, _ int) (int, error) {
		gate <- struct{}{}
		for len(gate) < 2 {
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Millisecond):
			}
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if got := DefaultWorkers(3); got != 3 {
		t.Fatalf("DefaultWorkers(3) = %d", got)
	}
	if got := DefaultWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := DefaultWorkers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers(-5) = %d", got)
	}
}

func TestSeedForProperties(t *testing.T) {
	seen := make(map[int64]int)
	for _, base := range []int64{0, 1, 42, -17, 1 << 40} {
		for i := 0; i < 1000; i++ {
			s := SeedFor(base, i)
			if s == 0 {
				t.Fatalf("SeedFor(%d, %d) = 0; zero seeds mean 'use default' downstream", base, i)
			}
			if s != SeedFor(base, i) {
				t.Fatalf("SeedFor(%d, %d) not deterministic", base, i)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: SeedFor(%d, %d) == earlier seed %d", base, i, prev)
			}
			seen[s] = i
		}
	}
}

func TestSeedForMatchesKnownVector(t *testing.T) {
	// Pin the derivation so a refactor can't silently change every
	// experiment's random stream.
	vectors := []struct {
		base  int64
		index int
		want  int64
	}{
		{1, 0, -7995527694508729151},
		{1, 1, -4689498862643123097},
		{2, 0, -7541218347953203506},
		{42, 7, -3677692746721775708},
	}
	for _, v := range vectors {
		if got := SeedFor(v.base, v.index); got != v.want {
			t.Fatalf("SeedFor(%d, %d) = %d, want %d", v.base, v.index, got, v.want)
		}
	}
}

func TestMap(t *testing.T) {
	got := Map(Indices(10), 4, func(i, task int) string {
		return fmt.Sprintf("t%d", task)
	})
	for i, v := range got {
		if v != fmt.Sprintf("t%d", i) {
			t.Fatalf("Map[%d] = %q", i, v)
		}
	}
	if Map(nil, 4, func(i, task int) int { return 0 }) != nil {
		t.Fatal("Map(nil) should be nil")
	}
}

func TestIndices(t *testing.T) {
	if got := Indices(0); got != nil {
		t.Fatalf("Indices(0) = %v", got)
	}
	if got := Indices(-1); got != nil {
		t.Fatalf("Indices(-1) = %v", got)
	}
	got := Indices(4)
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("Indices(4) = %v", got)
	}
}
