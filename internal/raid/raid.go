// Package raid implements software RAID over simulated drives, to answer a
// question the paper's data-center framing raises immediately: does
// redundancy protect a submerged rack from an acoustic attack? The answer
// the simulation gives — no, when every member shares the enclosure the
// attack is a common-mode failure; yes, partially, when the array spans
// acoustically separate containers — is exactly the kind of deployment
// guidance the paper calls for in §5.
//
// Levels implemented: RAID-0 (striping), RAID-1 (mirroring), and RAID-5
// (striping with rotating parity), over any blockdev.Device members.
//
// Member failure is governed by an error-threshold Policy: a member is only
// marked permanently failed after FailThreshold consecutive I/O errors, so
// a bounded acoustic burst degrades throughput instead of ejecting drives.
// Chunks whose redundant copies diverged during transient failures are
// tracked as stale and resilvered by Recover, which also reinstates members
// that answer again after an attack ends and swaps hot spares (AddSpare)
// for members that stayed dead, rebuilding their contents from redundancy
// with progress tracking.
package raid

import (
	"errors"
	"fmt"
	"sort"

	"deepnote/internal/blockdev"
	"deepnote/internal/metrics"
)

// Level is the RAID level.
type Level int

// Supported levels.
const (
	RAID0 Level = 0
	RAID1 Level = 1
	RAID5 Level = 5
)

// String names the level.
func (l Level) String() string { return fmt.Sprintf("RAID-%d", int(l)) }

// Errors reported by the array.
var (
	// ErrDegraded means more members failed than the level tolerates.
	ErrDegraded = errors.New("raid: array has failed beyond redundancy")
	// ErrBadConfig reports invalid geometry.
	ErrBadConfig = errors.New("raid: invalid configuration")
)

// StripeSize is the striping unit in bytes.
const StripeSize = 64 << 10

// Policy controls when a member's I/O errors become a permanent failure.
// RAID-0 ignores the threshold: with no redundancy an unreadable chunk is
// data loss, so the first error fails the member immediately (as mdadm
// kicks a RAID-0 member on any error).
type Policy struct {
	// FailThreshold is the number of consecutive I/O errors after which
	// a member is marked permanently failed. A successful request resets
	// the member's streak.
	FailThreshold int
}

// DefaultPolicy tolerates short transient bursts: three consecutive errors
// before a member is ejected.
func DefaultPolicy() Policy { return Policy{FailThreshold: 3} }

func (p Policy) withDefaults() Policy {
	if p.FailThreshold <= 0 {
		p.FailThreshold = DefaultPolicy().FailThreshold
	}
	return p
}

// Stats counts the array's failure-handling activity.
type Stats struct {
	// TransientErrors counts member I/O errors absorbed (whether or not
	// they later crossed the threshold).
	TransientErrors int64
	// MemberFailures counts members marked permanently failed.
	MemberFailures int64
	// StaleChunks counts chunks marked stale after divergent writes.
	StaleChunks int64
	// StaleRepaired counts stale chunks rebuilt from redundancy.
	StaleRepaired int64
	// StaleAccepted counts stale chunks cleared by accepting on-media
	// content because no redundant source was available.
	StaleAccepted int64
	// Reinstated counts failed members brought back by Recover probes.
	Reinstated int64
	// SparesUsed counts hot spares swapped in for dead members.
	SparesUsed int64
	// Rebuilds counts resilver passes that had work to do.
	Rebuilds int64
	// RebuildChunks counts chunks written during rebuilds/resilvers.
	RebuildChunks int64
}

// Array is a RAID set over block devices.
type Array struct {
	level   Level
	members []blockdev.Device
	// failed marks members the array has given up on (threshold crossed).
	failed []bool
	// streak counts consecutive I/O errors per member.
	streak []int
	// stale tracks member-local chunk bases whose on-media content
	// diverged from the array's logical content during a transient
	// failure; reads avoid them, Recover repairs them.
	stale []map[int64]struct{}
	// dirty tracks chunk bases written while a member was failed; on
	// reinstatement they become stale and are resilvered.
	dirty []map[int64]struct{}
	// written tracks every member-local chunk base the array has written,
	// bounding spare rebuilds to the used footprint.
	written map[int64]struct{}
	spares  []blockdev.Device
	policy  Policy
	stats   Stats
	// rebuildDone/rebuildTotal expose progress of the latest resilver.
	rebuildDone, rebuildTotal int64
	size                      int64
	memberSize                int64
}

// New assembles an array with DefaultPolicy. RAID-0 and RAID-1 need ≥2
// members, RAID-5 ≥3.
func New(level Level, members []blockdev.Device) (*Array, error) {
	return NewWithPolicy(level, members, DefaultPolicy())
}

// NewWithPolicy assembles an array with an explicit failure policy.
func NewWithPolicy(level Level, members []blockdev.Device, policy Policy) (*Array, error) {
	min := 2
	if level == RAID5 {
		min = 3
	}
	if len(members) < min {
		return nil, fmt.Errorf("%w: %v needs at least %d members, got %d",
			ErrBadConfig, level, min, len(members))
	}
	switch level {
	case RAID0, RAID1, RAID5:
	default:
		return nil, fmt.Errorf("%w: unsupported level %d", ErrBadConfig, int(level))
	}
	memberSize := members[0].Size()
	for _, m := range members[1:] {
		if m.Size() < memberSize {
			memberSize = m.Size()
		}
	}
	memberSize -= memberSize % StripeSize
	a := &Array{
		level:      level,
		members:    members,
		failed:     make([]bool, len(members)),
		streak:     make([]int, len(members)),
		stale:      make([]map[int64]struct{}, len(members)),
		dirty:      make([]map[int64]struct{}, len(members)),
		written:    make(map[int64]struct{}),
		policy:     policy.withDefaults(),
		memberSize: memberSize,
	}
	for i := range a.stale {
		a.stale[i] = make(map[int64]struct{})
		a.dirty[i] = make(map[int64]struct{})
	}
	switch level {
	case RAID0:
		a.size = memberSize * int64(len(members))
	case RAID1:
		a.size = memberSize
	case RAID5:
		a.size = memberSize * int64(len(members)-1)
	}
	return a, nil
}

// Size returns the usable capacity.
func (a *Array) Size() int64 { return a.size }

// Level returns the array's RAID level.
func (a *Array) Level() Level { return a.level }

// Stats returns a copy of the failure-handling counters.
func (a *Array) Stats() Stats { return a.stats }

// FailedMembers returns the indexes of members marked failed.
func (a *Array) FailedMembers() []int {
	var out []int
	for i, f := range a.failed {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// StaleChunks returns the number of chunks currently awaiting repair.
func (a *Array) StaleChunks() int {
	n := 0
	for _, m := range a.stale {
		n += len(m)
	}
	return n
}

// Healthy reports whether the array can still serve all I/O.
func (a *Array) Healthy() bool {
	n := len(a.FailedMembers())
	switch a.level {
	case RAID0:
		return n == 0
	case RAID1:
		return n < len(a.members)
	case RAID5:
		return n <= 1
	}
	return false
}

// AddSpare registers a hot spare; Recover swaps spares in for members that
// stay dead after a probe.
func (a *Array) AddSpare(dev blockdev.Device) error {
	if dev.Size() < a.memberSize {
		return fmt.Errorf("%w: spare of %d bytes smaller than member size %d",
			ErrBadConfig, dev.Size(), a.memberSize)
	}
	a.spares = append(a.spares, dev)
	return nil
}

// RebuildProgress returns chunk counts of the most recent resilver pass
// (total 0 means no rebuild has run).
func (a *Array) RebuildProgress() (done, total int64) {
	return a.rebuildDone, a.rebuildTotal
}

func chunkBase(off int64) int64 { return off - off%StripeSize }

// memberError records one I/O error and fails the member at the threshold.
func (a *Array) memberError(i int) {
	a.stats.TransientErrors++
	a.streak[i]++
	if a.streak[i] >= a.policy.FailThreshold {
		a.failMember(i)
	}
}

func (a *Array) failMember(i int) {
	if !a.failed[i] {
		a.failed[i] = true
		a.stats.MemberFailures++
	}
}

func (a *Array) memberOK(i int) { a.streak[i] = 0 }

func (a *Array) markStale(i int, off int64) {
	b := chunkBase(off)
	if _, ok := a.stale[i][b]; !ok {
		a.stale[i][b] = struct{}{}
		a.stats.StaleChunks++
	}
}

func (a *Array) isStale(i int, off int64) bool {
	_, ok := a.stale[i][chunkBase(off)]
	return ok
}

func (a *Array) clearStale(i int, off int64) { delete(a.stale[i], chunkBase(off)) }

func (a *Array) markDirty(i int, off int64) { a.dirty[i][chunkBase(off)] = struct{}{} }

// stripeOf maps a logical offset to (member, memberOffset) for data, plus
// the parity member for RAID-5.
func (a *Array) stripeOf(off int64) (member int, memberOff int64, parity int) {
	stripe := off / StripeSize
	in := off % StripeSize
	n := int64(len(a.members))
	switch a.level {
	case RAID0:
		member = int(stripe % n)
		memberOff = (stripe/n)*StripeSize + in
	case RAID1:
		member = 0
		memberOff = off
	case RAID5:
		row := stripe / (n - 1)
		parity = int(row % n) // rotating parity
		dataIdx := int(stripe % (n - 1))
		member = dataIdx
		if member >= parity {
			member++
		}
		memberOff = row*StripeSize + in
	}
	return member, memberOff, parity
}

// ReadAt implements blockdev.Device-style reads with redundancy: RAID-1
// falls over to another mirror, RAID-5 reconstructs from parity.
func (a *Array) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > a.size {
		return 0, fmt.Errorf("raid: read [%d,%d) outside array of %d", off, off+int64(len(p)), a.size)
	}
	done := 0
	for done < len(p) {
		n := chunkLen(off+int64(done), len(p)-done)
		if err := a.readChunk(p[done:done+n], off+int64(done)); err != nil {
			return done, err
		}
		done += n
	}
	return done, nil
}

func chunkLen(off int64, remain int) int {
	in := off % StripeSize
	n := StripeSize - in
	if int64(remain) < n {
		return remain
	}
	return int(n)
}

func (a *Array) readChunk(p []byte, off int64) error {
	member, memberOff, parity := a.stripeOf(off)
	switch a.level {
	case RAID0:
		if a.failed[member] {
			return fmt.Errorf("%w: member %d lost and RAID-0 has no redundancy", ErrDegraded, member)
		}
		if _, err := a.members[member].ReadAt(p, memberOff); err != nil {
			a.stats.TransientErrors++
			a.failMember(member)
			return fmt.Errorf("%w: member %d: %v", ErrDegraded, member, err)
		}
		a.memberOK(member)
		return nil
	case RAID1:
		var lastErr error
		clean := 0
		for i, m := range a.members {
			if a.failed[i] || a.isStale(i, off) {
				continue
			}
			clean++
			if _, err := m.ReadAt(p, off); err == nil {
				a.memberOK(i)
				return nil
			} else {
				a.memberError(i)
				lastErr = err
			}
		}
		if clean == 0 {
			// Every live mirror holds a stale copy: a common-mode write
			// failure left consistent pre-write data everywhere, so the
			// on-media content is the array's content.
			for i, m := range a.members {
				if a.failed[i] {
					continue
				}
				if _, err := m.ReadAt(p, off); err == nil {
					a.memberOK(i)
					a.stats.StaleAccepted++
					return nil
				} else {
					a.memberError(i)
					lastErr = err
				}
			}
		}
		return fmt.Errorf("%w: all mirrors failed: %v", ErrDegraded, lastErr)
	case RAID5:
		if !a.failed[member] && !a.isStale(member, memberOff) {
			if _, err := a.members[member].ReadAt(p, memberOff); err == nil {
				a.memberOK(member)
				return nil
			}
			a.memberError(member)
		}
		rerr := a.reconstruct(p, member, memberOff)
		if rerr == nil {
			return nil
		}
		// Reconstruction impossible; if the member itself still answers,
		// accept on-media content (consistent pre-write data after a
		// common-mode failure).
		if !a.failed[member] && a.isStale(member, memberOff) {
			if _, err := a.members[member].ReadAt(p, memberOff); err == nil {
				a.memberOK(member)
				a.stats.StaleAccepted++
				return nil
			}
			a.memberError(member)
		}
		_ = parity
		return rerr
	}
	return fmt.Errorf("%w: unsupported level", ErrBadConfig)
}

// reconstruct rebuilds a RAID-5 chunk by XORing all other members at the
// same row; every source must be live, non-stale, and readable.
func (a *Array) reconstruct(p []byte, lost int, memberOff int64) error {
	zero(p)
	buf := make([]byte, len(p))
	for i, m := range a.members {
		if i == lost {
			continue
		}
		if a.failed[i] {
			return fmt.Errorf("%w: member %d down during reconstruction", ErrDegraded, i)
		}
		if a.isStale(i, memberOff) {
			return fmt.Errorf("%w: member %d stale at row %d", ErrDegraded, i, chunkBase(memberOff))
		}
		if _, err := m.ReadAt(buf, memberOff); err != nil {
			a.memberError(i)
			return fmt.Errorf("%w: reconstruction read from member %d: %v", ErrDegraded, i, err)
		}
		a.memberOK(i)
		xorInto(p, buf)
	}
	return nil
}

// WriteAt implements redundant writes: RAID-1 writes all mirrors, RAID-5
// updates data and parity.
func (a *Array) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > a.size {
		return 0, fmt.Errorf("raid: write [%d,%d) outside array of %d", off, off+int64(len(p)), a.size)
	}
	done := 0
	for done < len(p) {
		n := chunkLen(off+int64(done), len(p)-done)
		if err := a.writeChunk(p[done:done+n], off+int64(done)); err != nil {
			return done, err
		}
		done += n
	}
	return done, nil
}

// writeLeg writes one member's share and reports success, maintaining the
// streak and stale bookkeeping.
func (a *Array) writeLeg(i int, p []byte, off int64) bool {
	if _, err := a.members[i].WriteAt(p, off); err != nil {
		a.memberError(i)
		if a.failed[i] {
			a.markDirty(i, off)
		}
		return false
	}
	a.memberOK(i)
	a.clearStale(i, off)
	return true
}

func (a *Array) writeChunk(p []byte, off int64) error {
	member, memberOff, parity := a.stripeOf(off)
	switch a.level {
	case RAID0:
		a.written[chunkBase(memberOff)] = struct{}{}
		if a.failed[member] {
			return fmt.Errorf("%w: member %d lost", ErrDegraded, member)
		}
		if _, err := a.members[member].WriteAt(p, memberOff); err != nil {
			a.stats.TransientErrors++
			a.failMember(member)
			return fmt.Errorf("%w: member %d: %v", ErrDegraded, member, err)
		}
		a.memberOK(member)
		return nil
	case RAID1:
		a.written[chunkBase(off)] = struct{}{}
		ok := 0
		okMask := make([]bool, len(a.members))
		var lastErr error
		for i, m := range a.members {
			if a.failed[i] {
				a.markDirty(i, off)
				continue
			}
			if _, err := m.WriteAt(p, off); err != nil {
				a.memberError(i)
				if a.failed[i] {
					a.markDirty(i, off)
				}
				lastErr = err
				continue
			}
			a.memberOK(i)
			a.clearStale(i, off)
			okMask[i] = true
			ok++
		}
		if ok == 0 {
			// No mirror diverged: all hold consistent pre-write data.
			return fmt.Errorf("%w: no mirror accepted the write: %v", ErrDegraded, lastErr)
		}
		// Mirrors that missed an acknowledged write are stale until
		// resilvered from one that landed it.
		for i := range a.members {
			if !okMask[i] && !a.failed[i] {
				a.markStale(i, off)
			}
		}
		return nil
	case RAID5:
		return a.writeRAID5(p, member, memberOff, parity)
	}
	return fmt.Errorf("%w: unsupported level", ErrBadConfig)
}

// writeRAID5 writes the data leg and recomputes the row's parity from all
// data members (full-stripe recompute keeps parity correct even when the
// previous on-media data or parity chunk was stale). When exactly one leg
// lands, the other chunk is marked stale; when neither lands, media keeps
// consistent pre-write content and the write reports failure.
func (a *Array) writeRAID5(p []byte, member int, memberOff int64, parity int) error {
	a.written[chunkBase(memberOff)] = struct{}{}
	if a.failed[member] {
		a.markDirty(member, memberOff)
	}
	if a.failed[parity] {
		a.markDirty(parity, memberOff)
	}
	if a.failed[member] && a.failed[parity] {
		return fmt.Errorf("%w: data and parity members both down", ErrDegraded)
	}

	dataW := false
	if !a.failed[member] {
		dataW = a.writeLeg(member, p, memberOff)
	}

	parityW := false
	if !a.failed[parity] {
		// New parity = XOR of every data chunk in the row, with the
		// target chunk at its new content.
		newParity := make([]byte, len(p))
		copy(newParity, p)
		sourcesOK := true
		for i, m := range a.members {
			if i == member || i == parity {
				continue
			}
			if a.failed[i] || a.isStale(i, memberOff) {
				sourcesOK = false
				break
			}
			buf := make([]byte, len(p))
			if _, err := m.ReadAt(buf, memberOff); err != nil {
				a.memberError(i)
				sourcesOK = false
				break
			}
			a.memberOK(i)
			xorInto(newParity, buf)
		}
		if sourcesOK {
			parityW = a.writeLeg(parity, newParity, memberOff)
		}
	}

	switch {
	case dataW && parityW:
		return nil
	case dataW && !parityW:
		// Data landed; the parity chunk no longer matches the row.
		if !a.failed[parity] {
			a.markStale(parity, memberOff)
		}
		return nil
	case !dataW && parityW:
		// Parity encodes the new data; the data chunk on media is old and
		// reads must reconstruct until it is resilvered.
		if !a.failed[member] {
			a.markStale(member, memberOff)
		}
		return nil
	default:
		return fmt.Errorf("%w: write lost both data and parity", ErrDegraded)
	}
}

// Flush flushes every healthy member.
func (a *Array) Flush() error {
	var lastErr error
	ok := 0
	for i, m := range a.members {
		if a.failed[i] {
			continue
		}
		if err := m.Flush(); err != nil {
			a.memberError(i)
			lastErr = err
			continue
		}
		a.memberOK(i)
		ok++
	}
	if ok == 0 || !a.Healthy() {
		return fmt.Errorf("%w: flush: %v", ErrDegraded, lastErr)
	}
	return nil
}

// RecoverReport summarizes one Recover pass.
type RecoverReport struct {
	// Reinstated lists failed members whose device answered the probe.
	Reinstated []int
	// SparesSwapped lists member slots replaced by hot spares.
	SparesSwapped []int
	// StaleRepaired counts chunks rebuilt from redundancy.
	StaleRepaired int
	// StaleAccepted counts chunks cleared by accepting on-media content.
	StaleAccepted int
	// StillStale counts chunks that could not be repaired this pass.
	StillStale int
	// StillFailed lists members that remain failed.
	StillFailed []int
}

// Recover is the post-attack repair pass: probe failed members and
// reinstate the ones that answer, swap hot spares for the ones that stay
// dead, then resilver every stale chunk from redundancy. It is safe to call
// repeatedly; an attack still in progress simply leaves work for the next
// pass.
func (a *Array) Recover() RecoverReport {
	var rep RecoverReport
	probe := make([]byte, 512)
	for i := range a.members {
		if !a.failed[i] {
			continue
		}
		if _, err := a.members[i].ReadAt(probe, 0); err != nil {
			continue
		}
		a.failed[i] = false
		a.streak[i] = 0
		a.stats.Reinstated++
		// Everything written while the member was out is stale on it.
		for b := range a.dirty[i] {
			a.markStale(i, b)
		}
		a.dirty[i] = make(map[int64]struct{})
		rep.Reinstated = append(rep.Reinstated, i)
	}
	for i := range a.members {
		if !a.failed[i] || len(a.spares) == 0 {
			continue
		}
		a.members[i] = a.spares[0]
		a.spares = a.spares[1:]
		a.failed[i] = false
		a.streak[i] = 0
		a.stats.SparesUsed++
		// The spare is blank: every chunk the array ever wrote must be
		// rebuilt onto it.
		a.stale[i] = make(map[int64]struct{})
		a.dirty[i] = make(map[int64]struct{})
		for b := range a.written {
			if b < a.memberSize {
				a.markStale(i, b)
			}
		}
		rep.SparesSwapped = append(rep.SparesSwapped, i)
	}
	rep.StaleRepaired, rep.StaleAccepted = a.resilver()
	rep.StillStale = a.StaleChunks()
	rep.StillFailed = a.FailedMembers()
	return rep
}

// resilver repairs stale chunks in deterministic order, tracking progress.
func (a *Array) resilver() (repaired, accepted int) {
	total := int64(0)
	for i := range a.members {
		if !a.failed[i] {
			total += int64(len(a.stale[i]))
		}
	}
	a.rebuildTotal, a.rebuildDone = total, 0
	if total == 0 {
		return 0, 0
	}
	a.stats.Rebuilds++
	for i := range a.members {
		if a.failed[i] {
			continue
		}
		bases := make([]int64, 0, len(a.stale[i]))
		for b := range a.stale[i] {
			bases = append(bases, b)
		}
		sort.Slice(bases, func(x, y int) bool { return bases[x] < bases[y] })
		for _, b := range bases {
			fixed, fromMedia := a.repairChunk(i, b)
			if !fixed {
				continue
			}
			delete(a.stale[i], b)
			a.rebuildDone++
			if fromMedia {
				accepted++
				a.stats.StaleAccepted++
			} else {
				repaired++
				a.stats.StaleRepaired++
				a.stats.RebuildChunks++
			}
		}
	}
	return repaired, accepted
}

// repairChunk rebuilds one member-local chunk from redundancy. fromMedia
// reports that no redundant source existed and the on-media content was
// accepted as-is.
func (a *Array) repairChunk(i int, base int64) (fixed, fromMedia bool) {
	n := a.memberSize - base
	if n > StripeSize {
		n = StripeSize
	}
	if n <= 0 {
		return true, true
	}
	buf := make([]byte, n)
	switch a.level {
	case RAID1:
		for j, m := range a.members {
			if j == i || a.failed[j] || a.isStale(j, base) {
				continue
			}
			if _, err := m.ReadAt(buf, base); err != nil {
				a.memberError(j)
				return false, false
			}
			a.memberOK(j)
			if _, err := a.members[i].WriteAt(buf, base); err != nil {
				a.memberError(i)
				return false, false
			}
			a.memberOK(i)
			return true, false
		}
		// No clean mirror: all copies carry the same pre-write content.
		return true, true
	case RAID5:
		// A member's chunk (data or parity alike) is the XOR of all other
		// members at the row — the parity invariant.
		if err := a.reconstruct(buf, i, base); err == nil {
			if _, werr := a.members[i].WriteAt(buf, base); werr != nil {
				a.memberError(i)
				return false, false
			}
			a.memberOK(i)
			return true, false
		}
		// No usable sources (another leg stale or down at this row):
		// accept media rather than block recovery forever.
		return true, true
	default: // RAID0: nothing to repair from
		return true, true
	}
}

// PublishMetrics pushes the array's counters into a registry under the
// "raid." prefix (no-op on a nil registry).
func (a *Array) PublishMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s := a.stats
	reg.Add("raid.transient_errors", s.TransientErrors)
	reg.Add("raid.member_failures", s.MemberFailures)
	reg.Add("raid.stale_chunks", s.StaleChunks)
	reg.Add("raid.stale_repaired", s.StaleRepaired)
	reg.Add("raid.stale_accepted", s.StaleAccepted)
	reg.Add("raid.reinstated", s.Reinstated)
	reg.Add("raid.spares_used", s.SparesUsed)
	reg.Add("raid.rebuilds", s.Rebuilds)
	reg.Add("raid.rebuild_chunks", s.RebuildChunks)
	reg.MaxGauge("raid.members_failed", float64(len(a.FailedMembers())))
	if a.rebuildTotal > 0 {
		reg.MaxGauge("raid.rebuild_progress_pct",
			100*float64(a.rebuildDone)/float64(a.rebuildTotal))
	}
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

var _ blockdev.Device = (*Array)(nil)
