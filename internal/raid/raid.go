// Package raid implements software RAID over simulated drives, to answer a
// question the paper's data-center framing raises immediately: does
// redundancy protect a submerged rack from an acoustic attack? The answer
// the simulation gives — no, when every member shares the enclosure the
// attack is a common-mode failure; yes, partially, when the array spans
// acoustically separate containers — is exactly the kind of deployment
// guidance the paper calls for in §5.
//
// Levels implemented: RAID-0 (striping), RAID-1 (mirroring), and RAID-5
// (striping with rotating parity), over any blockdev.Device members.
package raid

import (
	"errors"
	"fmt"

	"deepnote/internal/blockdev"
)

// Level is the RAID level.
type Level int

// Supported levels.
const (
	RAID0 Level = 0
	RAID1 Level = 1
	RAID5 Level = 5
)

// String names the level.
func (l Level) String() string { return fmt.Sprintf("RAID-%d", int(l)) }

// Errors reported by the array.
var (
	// ErrDegraded means more members failed than the level tolerates.
	ErrDegraded = errors.New("raid: array has failed beyond redundancy")
	// ErrBadConfig reports invalid geometry.
	ErrBadConfig = errors.New("raid: invalid configuration")
)

// StripeSize is the striping unit in bytes.
const StripeSize = 64 << 10

// Array is a RAID set over block devices.
type Array struct {
	level   Level
	members []blockdev.Device
	// failed marks members the array has given up on after an I/O error.
	failed []bool
	size   int64
}

// New assembles an array. RAID-0 and RAID-1 need ≥2 members, RAID-5 ≥3.
func New(level Level, members []blockdev.Device) (*Array, error) {
	min := 2
	if level == RAID5 {
		min = 3
	}
	if len(members) < min {
		return nil, fmt.Errorf("%w: %v needs at least %d members, got %d",
			ErrBadConfig, level, min, len(members))
	}
	switch level {
	case RAID0, RAID1, RAID5:
	default:
		return nil, fmt.Errorf("%w: unsupported level %d", ErrBadConfig, int(level))
	}
	memberSize := members[0].Size()
	for _, m := range members[1:] {
		if m.Size() < memberSize {
			memberSize = m.Size()
		}
	}
	memberSize -= memberSize % StripeSize
	a := &Array{
		level:   level,
		members: members,
		failed:  make([]bool, len(members)),
	}
	switch level {
	case RAID0:
		a.size = memberSize * int64(len(members))
	case RAID1:
		a.size = memberSize
	case RAID5:
		a.size = memberSize * int64(len(members)-1)
	}
	return a, nil
}

// Size returns the usable capacity.
func (a *Array) Size() int64 { return a.size }

// Level returns the array's RAID level.
func (a *Array) Level() Level { return a.level }

// FailedMembers returns the indexes of members marked failed.
func (a *Array) FailedMembers() []int {
	var out []int
	for i, f := range a.failed {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// Healthy reports whether the array can still serve all I/O.
func (a *Array) Healthy() bool {
	n := len(a.FailedMembers())
	switch a.level {
	case RAID0:
		return n == 0
	case RAID1:
		return n < len(a.members)
	case RAID5:
		return n <= 1
	}
	return false
}

// stripeOf maps a logical offset to (member, memberOffset) for data, plus
// the parity member for RAID-5.
func (a *Array) stripeOf(off int64) (member int, memberOff int64, parity int) {
	stripe := off / StripeSize
	in := off % StripeSize
	n := int64(len(a.members))
	switch a.level {
	case RAID0:
		member = int(stripe % n)
		memberOff = (stripe/n)*StripeSize + in
	case RAID1:
		member = 0
		memberOff = off
	case RAID5:
		row := stripe / (n - 1)
		parity = int(row % n) // rotating parity
		dataIdx := int(stripe % (n - 1))
		member = dataIdx
		if member >= parity {
			member++
		}
		memberOff = row*StripeSize + in
	}
	return member, memberOff, parity
}

// ReadAt implements blockdev.Device-style reads with redundancy: RAID-1
// falls over to another mirror, RAID-5 reconstructs from parity.
func (a *Array) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > a.size {
		return 0, fmt.Errorf("raid: read [%d,%d) outside array of %d", off, off+int64(len(p)), a.size)
	}
	done := 0
	for done < len(p) {
		n := chunkLen(off+int64(done), len(p)-done)
		if err := a.readChunk(p[done:done+n], off+int64(done)); err != nil {
			return done, err
		}
		done += n
	}
	return done, nil
}

func chunkLen(off int64, remain int) int {
	in := off % StripeSize
	n := StripeSize - in
	if int64(remain) < n {
		return remain
	}
	return int(n)
}

func (a *Array) readChunk(p []byte, off int64) error {
	member, memberOff, parity := a.stripeOf(off)
	switch a.level {
	case RAID0:
		if a.failed[member] {
			return fmt.Errorf("%w: member %d lost and RAID-0 has no redundancy", ErrDegraded, member)
		}
		if _, err := a.members[member].ReadAt(p, memberOff); err != nil {
			a.failed[member] = true
			return fmt.Errorf("%w: member %d: %v", ErrDegraded, member, err)
		}
		return nil
	case RAID1:
		var lastErr error
		for i, m := range a.members {
			if a.failed[i] {
				continue
			}
			if _, err := m.ReadAt(p, off); err == nil {
				return nil
			} else {
				a.failed[i] = true
				lastErr = err
			}
		}
		return fmt.Errorf("%w: all mirrors failed: %v", ErrDegraded, lastErr)
	case RAID5:
		if !a.failed[member] {
			if _, err := a.members[member].ReadAt(p, memberOff); err == nil {
				return nil
			}
			a.failed[member] = true
		}
		return a.reconstruct(p, member, memberOff, parity)
	}
	return fmt.Errorf("%w: unsupported level", ErrBadConfig)
}

// reconstruct rebuilds a RAID-5 chunk by XORing the surviving members.
func (a *Array) reconstruct(p []byte, lost int, memberOff int64, parity int) error {
	if len(a.FailedMembers()) > 1 {
		return fmt.Errorf("%w: %d members down", ErrDegraded, len(a.FailedMembers()))
	}
	_ = parity
	zero(p)
	buf := make([]byte, len(p))
	for i, m := range a.members {
		if i == lost {
			continue
		}
		if _, err := m.ReadAt(buf, memberOff); err != nil {
			a.failed[i] = true
			return fmt.Errorf("%w: reconstruction read from member %d: %v", ErrDegraded, i, err)
		}
		xorInto(p, buf)
	}
	return nil
}

// WriteAt implements redundant writes: RAID-1 writes all mirrors, RAID-5
// updates data and parity.
func (a *Array) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > a.size {
		return 0, fmt.Errorf("raid: write [%d,%d) outside array of %d", off, off+int64(len(p)), a.size)
	}
	done := 0
	for done < len(p) {
		n := chunkLen(off+int64(done), len(p)-done)
		if err := a.writeChunk(p[done:done+n], off+int64(done)); err != nil {
			return done, err
		}
		done += n
	}
	return done, nil
}

func (a *Array) writeChunk(p []byte, off int64) error {
	member, memberOff, parity := a.stripeOf(off)
	switch a.level {
	case RAID0:
		if a.failed[member] {
			return fmt.Errorf("%w: member %d lost", ErrDegraded, member)
		}
		if _, err := a.members[member].WriteAt(p, memberOff); err != nil {
			a.failed[member] = true
			return fmt.Errorf("%w: member %d: %v", ErrDegraded, member, err)
		}
		return nil
	case RAID1:
		ok := 0
		for i, m := range a.members {
			if a.failed[i] {
				continue
			}
			if _, err := m.WriteAt(p, off); err != nil {
				a.failed[i] = true
				continue
			}
			ok++
		}
		if ok == 0 {
			return fmt.Errorf("%w: no mirror accepted the write", ErrDegraded)
		}
		return nil
	case RAID5:
		return a.writeRAID5(p, member, memberOff, parity)
	}
	return fmt.Errorf("%w: unsupported level", ErrBadConfig)
}

// writeRAID5 performs read-modify-write parity maintenance.
func (a *Array) writeRAID5(p []byte, member int, memberOff int64, parity int) error {
	if len(a.FailedMembers()) > 1 {
		return fmt.Errorf("%w: %d members down", ErrDegraded, len(a.FailedMembers()))
	}
	oldData := make([]byte, len(p))
	oldParity := make([]byte, len(p))

	dataOK := !a.failed[member]
	parityOK := !a.failed[parity]
	if dataOK {
		if _, err := a.members[member].ReadAt(oldData, memberOff); err != nil {
			a.failed[member] = true
			dataOK = false
		}
	}
	if parityOK {
		// The parity chunk sits at the same row offset on its member.
		if _, err := a.members[parity].ReadAt(oldParity, memberOff); err != nil {
			a.failed[parity] = true
			parityOK = false
		}
	}
	if !dataOK && !parityOK {
		return fmt.Errorf("%w: data and parity members both down", ErrDegraded)
	}
	// New parity = old parity XOR old data XOR new data (when both
	// legible); with one leg down, write what survives.
	if dataOK {
		if _, err := a.members[member].WriteAt(p, memberOff); err != nil {
			a.failed[member] = true
			dataOK = false
		}
	}
	if parityOK {
		newParity := make([]byte, len(p))
		copy(newParity, oldParity)
		xorInto(newParity, oldData)
		xorInto(newParity, p)
		if _, err := a.members[parity].WriteAt(newParity, memberOff); err != nil {
			a.failed[parity] = true
			parityOK = false
		}
	}
	if !dataOK && !parityOK {
		return fmt.Errorf("%w: write lost both data and parity", ErrDegraded)
	}
	return nil
}

// Flush flushes every healthy member.
func (a *Array) Flush() error {
	var lastErr error
	ok := 0
	for i, m := range a.members {
		if a.failed[i] {
			continue
		}
		if err := m.Flush(); err != nil {
			a.failed[i] = true
			lastErr = err
			continue
		}
		ok++
	}
	if !a.Healthy() {
		return fmt.Errorf("%w: flush: %v", ErrDegraded, lastErr)
	}
	_ = ok
	return nil
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

var _ blockdev.Device = (*Array)(nil)
