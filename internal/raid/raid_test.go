package raid

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/metrics"
	"deepnote/internal/simclock"
)

// newMembers builds n independent simulated drives on one clock.
func newMembers(t *testing.T, n int) ([]*blockdev.Disk, []blockdev.Device, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	disks := make([]*blockdev.Disk, n)
	devs := make([]blockdev.Device, n)
	for i := range disks {
		drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, int64(21+i))
		if err != nil {
			t.Fatal(err)
		}
		disks[i] = blockdev.NewDisk(drive)
		devs[i] = disks[i]
	}
	return disks, devs, clock
}

func TestNewValidation(t *testing.T) {
	_, devs, _ := newMembers(t, 3)
	if _, err := New(RAID0, devs[:1]); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("RAID0 with 1 member: %v", err)
	}
	if _, err := New(RAID5, devs[:2]); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("RAID5 with 2 members: %v", err)
	}
	if _, err := New(Level(7), devs); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown level: %v", err)
	}
	if RAID5.String() != "RAID-5" {
		t.Fatal("level string")
	}
}

func TestSizes(t *testing.T) {
	_, devs, _ := newMembers(t, 4)
	member := devs[0].Size() - devs[0].Size()%StripeSize
	r0, _ := New(RAID0, devs)
	if r0.Size() != 4*member {
		t.Fatalf("RAID0 size = %d", r0.Size())
	}
	r1, _ := New(RAID1, devs)
	if r1.Size() != member {
		t.Fatalf("RAID1 size = %d", r1.Size())
	}
	r5, _ := New(RAID5, devs)
	if r5.Size() != 3*member {
		t.Fatalf("RAID5 size = %d", r5.Size())
	}
}

func roundTrip(t *testing.T, a *Array, data []byte, off int64) {
	t.Helper()
	if _, err := a.WriteAt(data, off); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, off); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripAllLevels(t *testing.T) {
	for _, level := range []Level{RAID0, RAID1, RAID5} {
		_, devs, _ := newMembers(t, 4)
		a, err := New(level, devs)
		if err != nil {
			t.Fatal(err)
		}
		// Cross several stripes and start unaligned.
		data := bytes.Repeat([]byte{0x5A, 0x3C}, 3*StripeSize/2)
		roundTrip(t, a, data, StripeSize/2+17)
		if !a.Healthy() {
			t.Fatalf("%v: array unhealthy after clean ops", level)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	_, devs, _ := newMembers(t, 3)
	a, err := New(RAID5, devs)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte, offRaw uint32) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw % (4 << 20))
		if _, err := a.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := a.ReadAt(got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRAID1SurvivesOneDeadMirror(t *testing.T) {
	disks, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	data := []byte("mirrored payload")
	roundTrip(t, a, data, 0)
	// Kill mirror 0 with heavy vibration. Each read fails over to mirror 1;
	// the error-threshold policy ejects mirror 0 only after FailThreshold
	// consecutive errors.
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	got := make([]byte, len(data))
	for i := 0; i < DefaultPolicy().FailThreshold; i++ {
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatalf("read %d with one dead mirror: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("mirror fail-over returned wrong data")
		}
	}
	if len(a.FailedMembers()) != 1 {
		t.Fatalf("failed members = %v", a.FailedMembers())
	}
	if !a.Healthy() {
		t.Fatal("RAID1 should survive one mirror")
	}
	if a.Stats().MemberFailures != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}

func TestRAID1SurvivesBoundedAcousticBurst(t *testing.T) {
	// Regression for the transient-vs-permanent bugfix: a burst shorter
	// than the fail threshold must not eject a member, and Recover must
	// resilver the chunks the burst left stale.
	disks, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	data := bytes.Repeat([]byte{0xC3}, 8192)
	roundTrip(t, a, data, 0)

	// Burst: two consecutive failed writes on mirror 0 — below threshold.
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	update := bytes.Repeat([]byte{0x3C}, 8192)
	for i := 0; i < DefaultPolicy().FailThreshold-1; i++ {
		if _, err := a.WriteAt(update, 0); err != nil {
			t.Fatalf("write during burst: %v", err)
		}
	}
	if n := len(a.FailedMembers()); n != 0 {
		t.Fatalf("bounded burst ejected %d members", n)
	}
	if a.StaleChunks() == 0 {
		t.Fatal("burst should have left mirror 0 stale")
	}

	// Burst ends; the stale mirror heals and serves reads again.
	disks[0].Drive().SetVibration(hdd.Quiet())
	rep := a.Recover()
	if rep.StaleRepaired == 0 || rep.StillStale != 0 {
		t.Fatalf("recover report = %+v", rep)
	}
	// Mirror 0 now holds the acknowledged update.
	got := make([]byte, len(update))
	if _, err := disks[0].ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, update) {
		t.Fatal("resilver did not copy the acknowledged write")
	}
	if !a.Healthy() || len(a.FailedMembers()) != 0 {
		t.Fatal("array should be fully healthy after the burst")
	}
}

func TestRAID1StaleMirrorNotReadUntilRepaired(t *testing.T) {
	disks, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	data := bytes.Repeat([]byte{0x01}, 4096)
	roundTrip(t, a, data, 0)
	// Mirror 0 misses an acknowledged write.
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	update := bytes.Repeat([]byte{0x02}, 4096)
	if _, err := a.WriteAt(update, 0); err != nil {
		t.Fatalf("write with one vibrating mirror: %v", err)
	}
	disks[0].Drive().SetVibration(hdd.Quiet())
	// Reads must come from mirror 1 (fresh), not mirror 0 (stale).
	got := make([]byte, len(update))
	for i := 0; i < 5; i++ {
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, update) {
			t.Fatal("read served stale mirror data")
		}
	}
}

func TestRecoverReinstatesMemberAfterAttackEnds(t *testing.T) {
	disks, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	data := bytes.Repeat([]byte{0xAA}, 4096)
	roundTrip(t, a, data, 0)
	// Sustained attack on mirror 0 crosses the threshold.
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	for i := 0; i < DefaultPolicy().FailThreshold; i++ {
		if _, err := a.WriteAt(data, int64(i)*4096); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if len(a.FailedMembers()) != 1 {
		t.Fatalf("failed members = %v", a.FailedMembers())
	}
	// More writes land only on mirror 1 while 0 is out.
	update := bytes.Repeat([]byte{0xBB}, 4096)
	if _, err := a.WriteAt(update, 0); err != nil {
		t.Fatal(err)
	}
	// Attack ends: the probe answers, the member is reinstated, and the
	// writes it missed are resilvered.
	disks[0].Drive().SetVibration(hdd.Quiet())
	rep := a.Recover()
	if len(rep.Reinstated) != 1 || rep.Reinstated[0] != 0 {
		t.Fatalf("recover report = %+v", rep)
	}
	if rep.StillStale != 0 {
		t.Fatalf("recover left stale chunks: %+v", rep)
	}
	got := make([]byte, len(update))
	if _, err := disks[0].ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, update) {
		t.Fatal("reinstated mirror missing resilvered write")
	}
	if a.Stats().Reinstated != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}

func TestHotSpareRebuildWithProgress(t *testing.T) {
	disks, devs, clock := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	data := bytes.Repeat([]byte{0x77}, 4*StripeSize)
	roundTrip(t, a, data, 0)

	spareDrive, err := hdd.NewDrive(hdd.Barracuda500(), clock, 99)
	if err != nil {
		t.Fatal(err)
	}
	spare := blockdev.NewDisk(spareDrive)
	if err := a.AddSpare(spare); err != nil {
		t.Fatal(err)
	}

	// Mirror 0 dies permanently (vibration never stops).
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	for i := 0; i < DefaultPolicy().FailThreshold; i++ {
		if _, err := a.WriteAt(data[:4096], 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if len(a.FailedMembers()) != 1 {
		t.Fatalf("failed members = %v", a.FailedMembers())
	}

	rep := a.Recover()
	if len(rep.SparesSwapped) != 1 || rep.SparesSwapped[0] != 0 {
		t.Fatalf("recover report = %+v", rep)
	}
	done, total := a.RebuildProgress()
	if total == 0 || done != total {
		t.Fatalf("rebuild progress %d/%d", done, total)
	}
	// The spare now mirrors the array contents.
	got := make([]byte, len(data))
	if _, err := spare.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("spare rebuild produced wrong content")
	}
	if s := a.Stats(); s.SparesUsed != 1 || s.Rebuilds == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRAID5RecoverRepairsStaleParity(t *testing.T) {
	disks, devs, _ := newMembers(t, 3)
	a, _ := New(RAID5, devs)
	data := bytes.Repeat([]byte{0x42}, 2*StripeSize)
	roundTrip(t, a, data, 0)
	// Parity member for row 0 (member 0) misses one parity update.
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	update := bytes.Repeat([]byte{0x24}, StripeSize)
	if _, err := a.WriteAt(update, 0); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	if a.StaleChunks() == 0 {
		t.Fatal("missed parity update should be stale")
	}
	disks[0].Drive().SetVibration(hdd.Quiet())
	rep := a.Recover()
	if rep.StaleRepaired == 0 || rep.StillStale != 0 {
		t.Fatalf("recover report = %+v", rep)
	}
	// Parity invariant restored: XOR across members at row 0 is zero.
	acc := make([]byte, StripeSize)
	buf := make([]byte, StripeSize)
	for _, m := range disks {
		if _, err := m.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		for i := range acc {
			acc[i] ^= buf[i]
		}
	}
	for _, b := range acc {
		if b != 0 {
			t.Fatal("parity invariant broken after resilver")
		}
	}
}

func TestRAIDPublishMetrics(t *testing.T) {
	disks, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	data := bytes.Repeat([]byte{1}, 4096)
	roundTrip(t, a, data, 0)
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	disks[0].Drive().SetVibration(hdd.Quiet())
	a.Recover()
	reg := metrics.NewRegistry()
	a.PublishMetrics(reg)
	snap := reg.Snapshot()
	if snap.Counters["raid.transient_errors"] == 0 {
		t.Fatalf("snapshot: %+v", snap.Counters)
	}
	if snap.Counters["raid.stale_repaired"] == 0 {
		t.Fatalf("snapshot: %+v", snap.Counters)
	}
	a.PublishMetrics(nil) // must not panic
}

func TestRAID5ReconstructsFromParity(t *testing.T) {
	disks, devs, _ := newMembers(t, 3)
	a, _ := New(RAID5, devs)
	data := bytes.Repeat([]byte{7, 11, 13}, StripeSize) // multiple stripes
	roundTrip(t, a, data, 0)
	// Kill one member, then read everything back through reconstruction.
	disks[1].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("parity reconstruction returned wrong data")
	}
	if !a.Healthy() {
		t.Fatal("RAID5 should survive one member")
	}
}

func TestRAID0DiesWithAnyMember(t *testing.T) {
	disks, devs, _ := newMembers(t, 3)
	a, _ := New(RAID0, devs)
	data := bytes.Repeat([]byte{1}, 4*StripeSize)
	roundTrip(t, a, data, 0)
	disks[2].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); !errors.Is(err, ErrDegraded) {
		t.Fatalf("RAID0 with dead member: %v", err)
	}
	if a.Healthy() {
		t.Fatal("RAID0 cannot be healthy with a failed member")
	}
}

func TestCommonModeAttackDefeatsAllRedundancy(t *testing.T) {
	// The deployment lesson: when every member shares the enclosure, the
	// acoustic attack hits them all, and no RAID level survives.
	for _, level := range []Level{RAID1, RAID5} {
		disks, devs, _ := newMembers(t, 3)
		a, _ := New(level, devs)
		data := bytes.Repeat([]byte{9}, StripeSize)
		roundTrip(t, a, data, 0)
		for _, d := range disks {
			d.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
		}
		if _, err := a.WriteAt(data, 0); !errors.Is(err, ErrDegraded) {
			t.Fatalf("%v: common-mode write survived: %v", level, err)
		}
	}
}

func TestRAID5DegradedWrite(t *testing.T) {
	disks, devs, _ := newMembers(t, 3)
	a, _ := New(RAID5, devs)
	seed := bytes.Repeat([]byte{0xEE}, 2*StripeSize)
	roundTrip(t, a, seed, 0)
	// One member dies; writes must still land (data or parity leg).
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	update := bytes.Repeat([]byte{0x55}, StripeSize)
	if _, err := a.WriteAt(update, 0); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	got := make([]byte, len(update))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatalf("read after degraded write: %v", err)
	}
	if !bytes.Equal(got, update) {
		t.Fatal("degraded write lost data")
	}
}

func TestOutOfRange(t *testing.T) {
	_, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	buf := make([]byte, 8)
	if _, err := a.ReadAt(buf, -1); err == nil {
		t.Fatal("negative read accepted")
	}
	if _, err := a.WriteAt(buf, a.Size()); err == nil {
		t.Fatal("overflow write accepted")
	}
}

func TestFlush(t *testing.T) {
	disks, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, d := range disks {
		d.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	}
	if err := a.Flush(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("flush with all members dead: %v", err)
	}
}

func TestRAID5ParityInvariantProperty(t *testing.T) {
	// After any write pattern, XOR across all members at every stripe row
	// must be zero — the invariant reconstruction depends on.
	disks, devs, _ := newMembers(t, 3)
	a, err := New(RAID5, devs)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte, offRaw uint32) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw % (2 << 20))
		if _, err := a.WriteAt(data, off); err != nil {
			return false
		}
		// Check parity over the rows the write touched.
		firstRow := (off / StripeSize) / 2 * StripeSize
		lastRow := ((off + int64(len(data))) / StripeSize / 2) * StripeSize
		for row := firstRow; row <= lastRow; row += StripeSize {
			acc := make([]byte, StripeSize)
			buf := make([]byte, StripeSize)
			for _, m := range disks {
				if _, err := m.ReadAt(buf, row); err != nil {
					return false
				}
				for i := range acc {
					acc[i] ^= buf[i]
				}
			}
			for _, b := range acc {
				if b != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
