package raid

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"deepnote/internal/blockdev"
	"deepnote/internal/hdd"
	"deepnote/internal/simclock"
)

// newMembers builds n independent simulated drives on one clock.
func newMembers(t *testing.T, n int) ([]*blockdev.Disk, []blockdev.Device, *simclock.Virtual) {
	t.Helper()
	clock := simclock.NewVirtual()
	disks := make([]*blockdev.Disk, n)
	devs := make([]blockdev.Device, n)
	for i := range disks {
		drive, err := hdd.NewDrive(hdd.Barracuda500(), clock, int64(21+i))
		if err != nil {
			t.Fatal(err)
		}
		disks[i] = blockdev.NewDisk(drive)
		devs[i] = disks[i]
	}
	return disks, devs, clock
}

func TestNewValidation(t *testing.T) {
	_, devs, _ := newMembers(t, 3)
	if _, err := New(RAID0, devs[:1]); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("RAID0 with 1 member: %v", err)
	}
	if _, err := New(RAID5, devs[:2]); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("RAID5 with 2 members: %v", err)
	}
	if _, err := New(Level(7), devs); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown level: %v", err)
	}
	if RAID5.String() != "RAID-5" {
		t.Fatal("level string")
	}
}

func TestSizes(t *testing.T) {
	_, devs, _ := newMembers(t, 4)
	member := devs[0].Size() - devs[0].Size()%StripeSize
	r0, _ := New(RAID0, devs)
	if r0.Size() != 4*member {
		t.Fatalf("RAID0 size = %d", r0.Size())
	}
	r1, _ := New(RAID1, devs)
	if r1.Size() != member {
		t.Fatalf("RAID1 size = %d", r1.Size())
	}
	r5, _ := New(RAID5, devs)
	if r5.Size() != 3*member {
		t.Fatalf("RAID5 size = %d", r5.Size())
	}
}

func roundTrip(t *testing.T, a *Array, data []byte, off int64) {
	t.Helper()
	if _, err := a.WriteAt(data, off); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, off); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripAllLevels(t *testing.T) {
	for _, level := range []Level{RAID0, RAID1, RAID5} {
		_, devs, _ := newMembers(t, 4)
		a, err := New(level, devs)
		if err != nil {
			t.Fatal(err)
		}
		// Cross several stripes and start unaligned.
		data := bytes.Repeat([]byte{0x5A, 0x3C}, 3*StripeSize/2)
		roundTrip(t, a, data, StripeSize/2+17)
		if !a.Healthy() {
			t.Fatalf("%v: array unhealthy after clean ops", level)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	_, devs, _ := newMembers(t, 3)
	a, err := New(RAID5, devs)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte, offRaw uint32) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw % (4 << 20))
		if _, err := a.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := a.ReadAt(got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRAID1SurvivesOneDeadMirror(t *testing.T) {
	disks, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	data := []byte("mirrored payload")
	roundTrip(t, a, data, 0)
	// Kill mirror 0 with heavy vibration.
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatalf("read with one dead mirror: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mirror fail-over returned wrong data")
	}
	if len(a.FailedMembers()) != 1 {
		t.Fatalf("failed members = %v", a.FailedMembers())
	}
	if !a.Healthy() {
		t.Fatal("RAID1 should survive one mirror")
	}
}

func TestRAID5ReconstructsFromParity(t *testing.T) {
	disks, devs, _ := newMembers(t, 3)
	a, _ := New(RAID5, devs)
	data := bytes.Repeat([]byte{7, 11, 13}, StripeSize) // multiple stripes
	roundTrip(t, a, data, 0)
	// Kill one member, then read everything back through reconstruction.
	disks[1].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("parity reconstruction returned wrong data")
	}
	if !a.Healthy() {
		t.Fatal("RAID5 should survive one member")
	}
}

func TestRAID0DiesWithAnyMember(t *testing.T) {
	disks, devs, _ := newMembers(t, 3)
	a, _ := New(RAID0, devs)
	data := bytes.Repeat([]byte{1}, 4*StripeSize)
	roundTrip(t, a, data, 0)
	disks[2].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); !errors.Is(err, ErrDegraded) {
		t.Fatalf("RAID0 with dead member: %v", err)
	}
	if a.Healthy() {
		t.Fatal("RAID0 cannot be healthy with a failed member")
	}
}

func TestCommonModeAttackDefeatsAllRedundancy(t *testing.T) {
	// The deployment lesson: when every member shares the enclosure, the
	// acoustic attack hits them all, and no RAID level survives.
	for _, level := range []Level{RAID1, RAID5} {
		disks, devs, _ := newMembers(t, 3)
		a, _ := New(level, devs)
		data := bytes.Repeat([]byte{9}, StripeSize)
		roundTrip(t, a, data, 0)
		for _, d := range disks {
			d.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
		}
		if _, err := a.WriteAt(data, 0); !errors.Is(err, ErrDegraded) {
			t.Fatalf("%v: common-mode write survived: %v", level, err)
		}
	}
}

func TestRAID5DegradedWrite(t *testing.T) {
	disks, devs, _ := newMembers(t, 3)
	a, _ := New(RAID5, devs)
	seed := bytes.Repeat([]byte{0xEE}, 2*StripeSize)
	roundTrip(t, a, seed, 0)
	// One member dies; writes must still land (data or parity leg).
	disks[0].Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	update := bytes.Repeat([]byte{0x55}, StripeSize)
	if _, err := a.WriteAt(update, 0); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	got := make([]byte, len(update))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatalf("read after degraded write: %v", err)
	}
	if !bytes.Equal(got, update) {
		t.Fatal("degraded write lost data")
	}
}

func TestOutOfRange(t *testing.T) {
	_, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	buf := make([]byte, 8)
	if _, err := a.ReadAt(buf, -1); err == nil {
		t.Fatal("negative read accepted")
	}
	if _, err := a.WriteAt(buf, a.Size()); err == nil {
		t.Fatal("overflow write accepted")
	}
}

func TestFlush(t *testing.T) {
	disks, devs, _ := newMembers(t, 2)
	a, _ := New(RAID1, devs)
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, d := range disks {
		d.Drive().SetVibration(hdd.Vibration{Freq: 650, Amplitude: 3})
	}
	if err := a.Flush(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("flush with all members dead: %v", err)
	}
}

func TestRAID5ParityInvariantProperty(t *testing.T) {
	// After any write pattern, XOR across all members at every stripe row
	// must be zero — the invariant reconstruction depends on.
	disks, devs, _ := newMembers(t, 3)
	a, err := New(RAID5, devs)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte, offRaw uint32) bool {
		if len(data) == 0 {
			return true
		}
		off := int64(offRaw % (2 << 20))
		if _, err := a.WriteAt(data, off); err != nil {
			return false
		}
		// Check parity over the rows the write touched.
		firstRow := (off / StripeSize) / 2 * StripeSize
		lastRow := ((off + int64(len(data))) / StripeSize / 2) * StripeSize
		for row := firstRow; row <= lastRow; row += StripeSize {
			acc := make([]byte, StripeSize)
			buf := make([]byte, StripeSize)
			for _, m := range disks {
				if _, err := m.ReadAt(buf, row); err != nil {
					return false
				}
				for i := range acc {
					acc[i] ^= buf[i]
				}
			}
			for _, b := range acc {
				if b != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
