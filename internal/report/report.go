// Package report renders experiment results the way the paper presents
// them: aligned ASCII tables for Tables 1–3, CSV for downstream plotting,
// and ASCII line charts for Figure 2's throughput-versus-frequency series.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoted when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// Series is one named line of (x, y) points for a chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders multiple series as an ASCII line chart, the stand-in for
// the paper's Figure 2 plots.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the plot area size in characters (defaults
	// 72×20).
	Width, Height int
}

// markers label the series in draw order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// plottable reports whether point i of the series has both coordinates
// present and finite. Meters and experiment math can emit NaN/Inf (e.g. a
// zero-duration window); those points are dropped from rendering and CSV
// rather than corrupting the scale or the output file.
func plottable(s Series, i int) bool {
	return i < len(s.Y) && !math.IsNaN(s.X[i]) && !math.IsInf(s.X[i], 0) &&
		!math.IsNaN(s.Y[i]) && !math.IsInf(s.Y[i], 0)
}

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if !plottable(s, i) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return c.Title + "\n(no data)\n"
	}
	if maxX == minX {
		// A single distinct x (one-point series): widen the range so the
		// point still renders instead of reporting "no data".
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if !plottable(s, i) {
				continue
			}
			px := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			py := int((s.Y[i] - minY) / (maxY - minY) * float64(h-1))
			row := h - 1 - py
			if row >= 0 && row < h && px >= 0 && px < w {
				grid[row][px] = m
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%8.1f +%s\n", maxY, strings.Repeat("-", w))
	for i, row := range grid {
		label := "         "
		if i == h-1 {
			label = fmt.Sprintf("%8.1f ", minY)
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	fmt.Fprintf(&b, "          %s\n", strings.Repeat("-", w))
	fmt.Fprintf(&b, "          %-12.4g%s%12.4g\n", minX, strings.Repeat(" ", maxInt(0, w-24)), maxX)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "          x: %s   y: %s\n", c.XLabel, c.YLabel)
	}
	return b.String()
}

// CSV renders all series as long-format CSV (series,x,y). Points with
// NaN/Inf coordinates are dropped — spreadsheet and plotting tools choke
// on those tokens.
func (c *Chart) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range c.Series {
		for i := range s.X {
			if !plottable(s, i) {
				continue
			}
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatMBps formats throughput the way the paper's tables do.
func FormatMBps(v float64) string {
	if v == 0 {
		return "0"
	}
	return fmt.Sprintf("%.1f", v)
}

// FormatLatencyMs formats a latency, printing the paper's "-" for
// no-response markers (negative values).
func FormatLatencyMs(ms float64) string {
	if ms < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", ms)
}
