package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1", "Distance", "Read", "Write")
	tb.AddRow("No Attack", "18.0", "22.7")
	tb.AddRow("1 cm", "0", "0")
	out := tb.String()
	if !strings.Contains(out, "Table 1") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "No Attack") || !strings.Contains(out, "22.7") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatal("row not padded")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1,5", "plain")
	csv := tb.CSV()
	if !strings.Contains(csv, "\"1,5\"") {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("missing header: %s", csv)
	}
	tb2 := NewTable("t", "a")
	tb2.AddRow(`say "hi"`)
	if !strings.Contains(tb2.CSV(), `"say ""hi"""`) {
		t.Fatalf("quotes not escaped: %s", tb2.CSV())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Table 3", "App", "Time")
	tb.AddRow("Ext4", "80.0")
	md := tb.Markdown()
	if !strings.Contains(md, "| App | Time |") || !strings.Contains(md, "| Ext4 | 80.0 |") {
		t.Fatalf("markdown wrong:\n%s", md)
	}
	if !strings.Contains(md, "**Table 3**") {
		t.Fatal("missing title")
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := Chart{
		Title:  "Figure 2(a)",
		XLabel: "Frequency (kHz)",
		YLabel: "Throughput (MB/s)",
		Series: []Series{
			{Name: "Scenario 1", X: []float64{1, 2, 3}, Y: []float64{0, 10, 20}},
			{Name: "Scenario 2", X: []float64{1, 2, 3}, Y: []float64{5, 15, 25}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "Figure 2(a)") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "Scenario 1") || !strings.Contains(out, "Scenario 2") {
		t.Fatal("missing legend")
	}
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Fatal("missing markers")
	}
}

func TestChartEmptyData(t *testing.T) {
	c := Chart{Title: "empty"}
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartCSV(t *testing.T) {
	c := Chart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}}
	csv := c.CSV()
	if !strings.Contains(csv, "series,x,y") || !strings.Contains(csv, "s,1,2") {
		t.Fatalf("csv wrong: %s", csv)
	}
}

func TestFormatHelpers(t *testing.T) {
	if FormatMBps(0) != "0" {
		t.Fatal("zero throughput")
	}
	if FormatMBps(18.04) != "18.0" {
		t.Fatal("rounding")
	}
	if FormatLatencyMs(-1) != "-" {
		t.Fatal("no-response marker")
	}
	if FormatLatencyMs(0.21) != "0.2" {
		t.Fatal("latency format")
	}
}
