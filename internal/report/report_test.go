package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1", "Distance", "Read", "Write")
	tb.AddRow("No Attack", "18.0", "22.7")
	tb.AddRow("1 cm", "0", "0")
	out := tb.String()
	if !strings.Contains(out, "Table 1") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "No Attack") || !strings.Contains(out, "22.7") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatal("row not padded")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1,5", "plain")
	csv := tb.CSV()
	if !strings.Contains(csv, "\"1,5\"") {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("missing header: %s", csv)
	}
	tb2 := NewTable("t", "a")
	tb2.AddRow(`say "hi"`)
	if !strings.Contains(tb2.CSV(), `"say ""hi"""`) {
		t.Fatalf("quotes not escaped: %s", tb2.CSV())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Table 3", "App", "Time")
	tb.AddRow("Ext4", "80.0")
	md := tb.Markdown()
	if !strings.Contains(md, "| App | Time |") || !strings.Contains(md, "| Ext4 | 80.0 |") {
		t.Fatalf("markdown wrong:\n%s", md)
	}
	if !strings.Contains(md, "**Table 3**") {
		t.Fatal("missing title")
	}
}

func TestChartRendersSeries(t *testing.T) {
	c := Chart{
		Title:  "Figure 2(a)",
		XLabel: "Frequency (kHz)",
		YLabel: "Throughput (MB/s)",
		Series: []Series{
			{Name: "Scenario 1", X: []float64{1, 2, 3}, Y: []float64{0, 10, 20}},
			{Name: "Scenario 2", X: []float64{1, 2, 3}, Y: []float64{5, 15, 25}},
		},
	}
	out := c.String()
	if !strings.Contains(out, "Figure 2(a)") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "Scenario 1") || !strings.Contains(out, "Scenario 2") {
		t.Fatal("missing legend")
	}
	if !strings.ContainsRune(out, '*') || !strings.ContainsRune(out, 'o') {
		t.Fatal("missing markers")
	}
}

func TestChartEmptyData(t *testing.T) {
	c := Chart{Title: "empty"}
	if !strings.Contains(c.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartEmptySeries(t *testing.T) {
	// A chart whose series exist but carry no points is still "no data".
	c := Chart{Title: "hollow", Series: []Series{{Name: "a"}, {Name: "b"}}}
	if !strings.Contains(c.String(), "no data") {
		t.Fatalf("hollow chart should say no data:\n%s", c.String())
	}
	if got := c.CSV(); got != "series,x,y\n" {
		t.Fatalf("hollow CSV should be header only: %q", got)
	}
}

func TestChartSinglePoint(t *testing.T) {
	// One point means maxX == minX; the chart must still render the point
	// rather than claiming there is no data.
	c := Chart{Title: "solo", Series: []Series{{Name: "s", X: []float64{2.5}, Y: []float64{7}}}}
	out := c.String()
	if strings.Contains(out, "no data") {
		t.Fatalf("single-point chart reported no data:\n%s", out)
	}
	if !strings.ContainsRune(out, '*') {
		t.Fatalf("single point not plotted:\n%s", out)
	}
}

func TestChartNonFiniteValues(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	c := Chart{
		Title: "dirty",
		Series: []Series{{
			Name: "s",
			X:    []float64{1, 2, nan, 4, 5},
			Y:    []float64{10, inf, 30, nan, 50},
		}},
	}
	// Must not panic, and the scale must come from the finite points only.
	out := c.String()
	if strings.Contains(out, "no data") {
		t.Fatalf("finite points should still render:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("non-finite leaked into render:\n%s", out)
	}
	csv := c.CSV()
	if strings.Contains(csv, "NaN") || strings.Contains(csv, "Inf") {
		t.Fatalf("non-finite leaked into CSV: %s", csv)
	}
	// Only the two fully-finite points survive.
	if !strings.Contains(csv, "s,1,10") || !strings.Contains(csv, "s,5,50") {
		t.Fatalf("finite rows missing: %s", csv)
	}
	if got := strings.Count(csv, "\n"); got != 3 { // header + 2 rows
		t.Fatalf("CSV rows = %d, want 3: %s", got, csv)
	}
}

func TestChartAllNonFinite(t *testing.T) {
	nan := math.NaN()
	c := Chart{Title: "void", Series: []Series{{Name: "s", X: []float64{nan, nan}, Y: []float64{nan, nan}}}}
	if !strings.Contains(c.String(), "no data") {
		t.Fatalf("all-NaN chart should say no data:\n%s", c.String())
	}
	if got := c.CSV(); got != "series,x,y\n" {
		t.Fatalf("all-NaN CSV should be header only: %q", got)
	}
}

func TestChartMismatchedXYLengths(t *testing.T) {
	// Y shorter than X must not panic; the unmatched X is dropped.
	c := Chart{Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{4, 5}}}}
	out := c.String()
	if strings.Contains(out, "no data") {
		t.Fatalf("paired points should render:\n%s", out)
	}
	if csv := c.CSV(); strings.Count(csv, "\n") != 3 {
		t.Fatalf("want 2 data rows: %s", csv)
	}
}

func TestChartCSV(t *testing.T) {
	c := Chart{Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}}
	csv := c.CSV()
	if !strings.Contains(csv, "series,x,y") || !strings.Contains(csv, "s,1,2") {
		t.Fatalf("csv wrong: %s", csv)
	}
}

func TestFormatHelpers(t *testing.T) {
	if FormatMBps(0) != "0" {
		t.Fatal("zero throughput")
	}
	if FormatMBps(18.04) != "18.0" {
		t.Fatal("rounding")
	}
	if FormatLatencyMs(-1) != "-" {
		t.Fatal("no-response marker")
	}
	if FormatLatencyMs(0.21) != "0.2" {
		t.Fatal("latency format")
	}
}
