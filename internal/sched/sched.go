// Package sched is the discrete-event core of the facility-scale
// simulation: a deterministic binary-heap event queue over the virtual
// time base (simclock), plus a cache for precomputed source→target
// transfer functions.
//
// # Event model
//
// The simulator is a conservative, epoch-synchronized discrete-event
// system. Every stateful resource (a drive stack) consumes its own event
// stream in (time, sequence) order from a Queue; events never migrate
// between resources, so resources can be dispatched concurrently with
// results that are byte-identical at any worker count. Cross-resource
// causality (a degraded read spawning parity fetches on other drives)
// is resolved at epoch boundaries: events spawned while draining epoch N
// are enqueued for epoch N+1. Within a resource, ties in event time are
// broken by the queue's monotone sequence number — the global issue
// order — so an arrival schedule that collides at nanosecond granularity
// still dispatches deterministically.
//
// # Transfer-function cache
//
// TransferCache memoizes the per-(source, target) gain of a physical
// transfer chain — in the Deep Note facility, the acoustic path from an
// attacker speaker through water, container wall, and mount to one
// drive's off-track response. Walking that chain costs dozens of
// transcendental evaluations; the serving hot path must never do it
// per operation. The invalidation rules:
//
//   - Geometry change (sources or targets added, removed, or moved)
//     invalidates the whole cache. Ensure detects dimension changes
//     itself; a same-shape move must call Invalidate explicitly.
//   - Excitation-set change (a source's tone frequency or drive level
//     re-tuned) invalidates the rows of the affected sources; since the
//     cache does not track tones, callers signal this with Invalidate.
//   - Keying sources on and off does NOT invalidate: an active-set mask
//     only selects which cached gains are superposed. This is what makes
//     attack schedules free — any on/off pattern over a fixed speaker
//     set reuses the same matrix.
//
// The cluster package builds the cache once at construction (its layout
// and speaker tones are immutable afterwards) and superposes cached
// gains per schedule step.
package sched

import (
	"time"

	"deepnote/internal/simclock"
)

// Item is one queued event: a time, a deterministic tie-break sequence,
// and an opaque caller payload. Items are plain data (no closures) so a
// warm queue pushes and pops without allocating.
type Item struct {
	// At is the event time in nanoseconds relative to the caller's
	// origin.
	At int64
	// Seq is the queue-assigned issue number; events with equal At
	// dispatch in Seq order.
	Seq uint64
	// ID is the caller's payload, typically a packed operation
	// descriptor.
	ID uint64
}

// before reports whether a sorts ahead of b: earlier time first, issue
// order breaking ties.
func (a Item) before(b Item) bool {
	return a.At < b.At || (a.At == b.At && a.Seq < b.Seq)
}

// Queue is a deterministic binary-heap event queue. The zero value is
// ready to use. Not safe for concurrent use: in the epoch model each
// resource owns exactly one queue.
type Queue struct {
	items []Item
	seq   uint64
}

// Len returns the number of queued events.
func (q *Queue) Len() int { return len(q.items) }

// Grow ensures capacity for n additional events without reallocation,
// so bulk issue (a traffic epoch) and the dispatch loop stay
// allocation-free.
func (q *Queue) Grow(n int) {
	if need := len(q.items) + n; need > cap(q.items) {
		items := make([]Item, len(q.items), need)
		copy(items, q.items)
		q.items = items
	}
}

// Reset drops all queued events and restarts the sequence counter,
// keeping the allocated storage for reuse.
func (q *Queue) Reset() {
	q.items = q.items[:0]
	q.seq = 0
}

// Push enqueues an event at time at (ns) carrying id, and returns the
// assigned sequence number. Pushing in nondecreasing time order costs
// O(1); out-of-order pushes cost O(log n).
func (q *Queue) Push(at int64, id uint64) uint64 {
	seq := q.seq
	q.seq++
	q.items = append(q.items, Item{At: at, Seq: seq, ID: id})
	q.siftUp(len(q.items) - 1)
	return seq
}

// Peek returns the next event without removing it; ok is false when the
// queue is empty.
func (q *Queue) Peek() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	return q.items[0], true
}

// Pop removes and returns the next event in (At, Seq) order; ok is
// false when the queue is empty.
func (q *Queue) Pop() (Item, bool) {
	n := len(q.items)
	if n == 0 {
		return Item{}, false
	}
	top := q.items[0]
	q.items[0] = q.items[n-1]
	q.items = q.items[:n-1]
	if len(q.items) > 1 {
		q.siftDown(0)
	}
	return top, true
}

func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.items[i].before(q.items[parent]) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue) siftDown(i int) {
	n := len(q.items)
	for {
		least := i
		if l := 2*i + 1; l < n && q.items[l].before(q.items[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && q.items[r].before(q.items[least]) {
			least = r
		}
		if least == i {
			return
		}
		q.items[i], q.items[least] = q.items[least], q.items[i]
		i = least
	}
}

// Runner drains a Queue against a virtual clock: each event is handed to
// the handler with the clock advanced to at least the event time (the
// clock never rewinds — an event whose time has already passed runs at
// the resource's current time, modeling a backlogged server). The
// handler may push follow-up events; they dispatch in order within the
// same drain.
type Runner struct {
	Queue Queue
	Clock *simclock.Virtual
}

// Run dispatches events until the queue is empty. origin anchors event
// times: an event at time t dispatches with the clock at or beyond
// origin+t. The handler receives each item in deterministic (At, Seq)
// order per the queue discipline.
func (r *Runner) Run(origin time.Time, handle func(Item)) {
	for {
		it, ok := r.Queue.Pop()
		if !ok {
			return
		}
		if now := r.Clock.Now().Sub(origin); int64(now) < it.At {
			r.Clock.Advance(time.Duration(it.At - int64(now)))
		}
		handle(it)
	}
}

// TransferCache memoizes per-(source, target) transfer gains. See the
// package documentation for the invalidation rules. The zero value is an
// empty, invalid cache.
type TransferCache struct {
	sources, targets int
	gains            []float64
	built            bool
}

// Built reports whether the cache currently holds a valid matrix.
func (c *TransferCache) Built() bool { return c.built }

// Invalidate drops the cached matrix. The next Ensure rebuilds it.
func (c *TransferCache) Invalidate() { c.built = false }

// Ensure makes the cache valid for a sources×targets geometry, calling
// fill exactly once per pair on (re)build. A dimension change implies a
// geometry change and rebuilds; a same-shape geometry or excitation
// change must be signaled with Invalidate first.
func (c *TransferCache) Ensure(sources, targets int, fill func(source, target int) float64) {
	if c.built && c.sources == sources && c.targets == targets {
		return
	}
	c.sources, c.targets = sources, targets
	if need := sources * targets; cap(c.gains) < need {
		c.gains = make([]float64, need)
	} else {
		c.gains = c.gains[:need]
	}
	for s := 0; s < sources; s++ {
		for t := 0; t < targets; t++ {
			c.gains[s*targets+t] = fill(s, t)
		}
	}
	c.built = true
}

// Gain returns the cached source→target gain. Callers must Ensure
// first; an unbuilt cache panics (a zero gain would silently disarm the
// attack model).
func (c *TransferCache) Gain(source, target int) float64 {
	if !c.built {
		panic("sched: TransferCache.Gain before Ensure")
	}
	return c.gains[source*c.targets+target]
}

// Hash64 is the deterministic per-event hash: a splitmix64 finalization
// of seed ^ (event · odd-constant). Engines that need a random-looking
// draw per scheduled event (WAN jitter, per-op noise) hash the owning
// resource's seed with the event's global issue sequence instead of
// consuming an ordered RNG stream, so the draw depends only on (seed,
// event) — never on worker interleaving or dispatch order.
func Hash64(seed, event uint64) uint64 {
	z := seed ^ (event * 0x9e3779b97f4a7c15)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// HashUnit maps Hash64's draw onto [0, 1) with 53-bit resolution.
func HashUnit(seed, event uint64) float64 {
	return float64(Hash64(seed, event)>>11) / (1 << 53)
}
