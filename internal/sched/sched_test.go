package sched

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"deepnote/internal/simclock"
)

// TestQueueOrdersByTimeThenSeq: events come out in time order, with the
// issue sequence breaking ties.
func TestQueueOrdersByTimeThenSeq(t *testing.T) {
	var q Queue
	q.Push(30, 0)
	q.Push(10, 1)
	q.Push(20, 2)
	q.Push(10, 3) // same time as event 1, issued later
	var got []uint64
	for {
		it, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, it.ID)
	}
	want := []uint64{1, 3, 2, 0}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestQueueMatchesSortedOrder cross-checks the heap against a reference
// sort over a randomized workload, including interleaved pushes and pops.
func TestQueueMatchesSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q Queue
	type ev struct {
		at  int64
		seq uint64
	}
	var ref []ev
	push := func(n int) {
		for i := 0; i < n; i++ {
			at := int64(rng.Intn(50))
			seq := q.Push(at, uint64(i))
			ref = append(ref, ev{at, seq})
		}
	}
	popAll := func() {
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].at != ref[j].at {
				return ref[i].at < ref[j].at
			}
			return ref[i].seq < ref[j].seq
		})
		for i := 0; q.Len() > 0; i++ {
			it, _ := q.Pop()
			if it.At != ref[i].at || it.Seq != ref[i].seq {
				t.Fatalf("pop %d: got (%d,%d), want (%d,%d)", i, it.At, it.Seq, ref[i].at, ref[i].seq)
			}
		}
		ref = ref[:0]
	}
	push(500)
	popAll()
	push(37) // reuse the warm queue
	popAll()
}

// TestQueueDispatchZeroAlloc is the allocation-regression gate for the
// event core: push+pop on a warm queue must not allocate, so the serving
// hot path's per-op cost is pure compute.
func TestQueueDispatchZeroAlloc(t *testing.T) {
	var q Queue
	q.Grow(64)
	avg := testing.AllocsPerRun(1000, func() {
		for i := int64(0); i < 64; i++ {
			q.Push(i^21, uint64(i)) // mildly out of order
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if avg != 0 {
		t.Fatalf("event dispatch allocated %.1f times per drain, want 0", avg)
	}
}

// TestRunnerAdvancesClockMonotonically: the runner advances the clock to
// each event's time and never rewinds for late events.
func TestRunnerAdvancesClockMonotonically(t *testing.T) {
	r := &Runner{Clock: simclock.NewVirtual()}
	origin := r.Clock.Now()
	r.Queue.Push(100, 0)
	r.Queue.Push(50, 1)
	r.Queue.Push(150, 2)
	var at []int64
	r.Run(origin, func(it Item) {
		now := int64(r.Clock.Now().Sub(origin))
		if now < it.At {
			t.Fatalf("event %d dispatched at clock %d before its time %d", it.ID, now, it.At)
		}
		at = append(at, now)
		if it.ID == 1 {
			// Simulate service time so event at t=100 arrives "late".
			r.Clock.Advance(80 * time.Nanosecond)
		}
	})
	if len(at) != 3 {
		t.Fatalf("dispatched %d events, want 3", len(at))
	}
	// Order: t=50 (id 1), then t=100 (id 0) at clock 130 (backlogged), then 150.
	if at[0] != 50 || at[1] != 130 || at[2] != 150 {
		t.Fatalf("dispatch clocks %v, want [50 130 150]", at)
	}
}

// TestTransferCacheFillOnce: Ensure fills each pair exactly once and
// serves subsequent lookups from the matrix.
func TestTransferCacheFillOnce(t *testing.T) {
	var c TransferCache
	calls := 0
	fill := func(s, d int) float64 {
		calls++
		return float64(s*10 + d)
	}
	c.Ensure(3, 4, fill)
	if calls != 12 {
		t.Fatalf("fill called %d times, want 12", calls)
	}
	c.Ensure(3, 4, fill) // no-op: same geometry
	if calls != 12 {
		t.Fatalf("valid cache refilled (%d calls)", calls)
	}
	if g := c.Gain(2, 3); g != 23 {
		t.Fatalf("Gain(2,3) = %v, want 23", g)
	}
}

// TestTransferCacheInvalidation: explicit invalidation and dimension
// changes rebuild; nothing else does.
func TestTransferCacheInvalidation(t *testing.T) {
	var c TransferCache
	calls := 0
	fill := func(s, d int) float64 { calls++; return 1 }
	c.Ensure(2, 2, fill)
	c.Ensure(2, 3, fill) // geometry change: rebuild
	if calls != 4+6 {
		t.Fatalf("fill calls %d, want 10 after dimension change", calls)
	}
	c.Invalidate()
	if c.Built() {
		t.Fatal("cache still built after Invalidate")
	}
	c.Ensure(2, 3, fill)
	if calls != 16 {
		t.Fatalf("fill calls %d, want 16 after Invalidate", calls)
	}
}

// TestTransferCacheGainBeforeEnsurePanics: reading an unbuilt cache is a
// programming error, not a silent zero.
func TestTransferCacheGainBeforeEnsurePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gain on unbuilt cache did not panic")
		}
	}()
	var c TransferCache
	c.Gain(0, 0)
}
