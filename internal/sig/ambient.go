// The benign ambient-source corpus: every underwater sound the attack
// fingerprinter must NOT alarm on. Each scenario is a seeded, parameterized
// generator of drive-tray telemetry components — narrowband lines plus
// broadband noise — deterministic per (seed, window index), so campaigns
// replay bit-for-bit at any worker count. Broadband levels for the
// open-water sources come from the Wenz curves in internal/water; the
// facility-local sources (pump, thermal creak) use fixed presets.
package sig

import (
	"fmt"
	"math"
	"math/rand"

	"deepnote/internal/parallel"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

// AmbientKind enumerates the benign ambient scenarios.
type AmbientKind int

const (
	// AmbientNone is silence — only the drive's own sensor noise.
	AmbientNone AmbientKind = iota
	// AmbientShipTraffic is a passing vessel: a blade-rate harmonic comb
	// on a slowly drifting fundamental plus low-frequency machinery
	// broadband. The comb's upper harmonics graze the vulnerable band.
	AmbientShipTraffic
	// AmbientRain is surface rain: pure broadband with a slow
	// shower-intensity envelope, no tonal structure.
	AmbientRain
	// AmbientShrimp is a snapping-shrimp colony: impulsive broadband
	// crackle — some windows loud, some quiet, never tonal.
	AmbientShrimp
	// AmbientPump is the facility's own coolant pump: a strong mains-rate
	// line at 120 Hz whose harmonics reach well into the vulnerable band
	// with amplitudes a naive threshold would flag. The classifier must
	// recognize the harmonic comb rooted below the band.
	AmbientPump
	// AmbientCreak is thermal-cycling hull creak: near silence with rare
	// broadband pops.
	AmbientCreak
)

// AmbientKinds returns the five benign scenarios of the corpus.
func AmbientKinds() []AmbientKind {
	return []AmbientKind{AmbientShipTraffic, AmbientRain, AmbientShrimp, AmbientPump, AmbientCreak}
}

// String names the scenario.
func (k AmbientKind) String() string {
	switch k {
	case AmbientNone:
		return "none"
	case AmbientShipTraffic:
		return "ship-traffic"
	case AmbientRain:
		return "rain"
	case AmbientShrimp:
		return "snapping-shrimp"
	case AmbientPump:
		return "facility-pump"
	case AmbientCreak:
		return "thermal-creak"
	}
	return fmt.Sprintf("ambient(%d)", int(k))
}

// AmbientComponent is one narrowband line of an ambient scenario, in the
// same units as drive off-track telemetry (track-pitch fractions).
type AmbientComponent struct {
	Freq  units.Frequency
	Amp   float64
	Phase float64
}

// Ambient is a benign ambient-noise scenario instance.
type Ambient struct {
	Kind AmbientKind
	// Level scales the scenario's nominal telemetry amplitude. Nil means
	// the default 1.0; Ptr(0) is an explicitly silent instance and is
	// honored (the zero-vs-unset convention of the other spec structs).
	Level *float64
	// Seed derives all per-window randomness (0 behaves as seed 1).
	Seed int64
}

// NewAmbient returns a nominal-level scenario instance.
func NewAmbient(kind AmbientKind, seed int64) Ambient {
	return Ambient{Kind: kind, Seed: seed}
}

func (a Ambient) level() float64 {
	if a.Level == nil {
		return 1
	}
	if *a.Level < 0 {
		return 0
	}
	return *a.Level
}

func (a Ambient) seed() int64 {
	if a.Seed == 0 {
		return 1
	}
	return a.Seed
}

// rng returns the deterministic generator for window w. The stream
// depends only on (seed, kind, w) — never on render order — so scenarios
// replay identically wherever the campaign runs them.
func (a Ambient) rng(w int) *rand.Rand {
	base := parallel.SeedFor(a.seed(), int(a.Kind))
	return rand.New(rand.NewSource(parallel.SeedFor(base, w)))
}

// wenzSigma maps a Wenz band level (dB re 1 µPa over the vulnerable band)
// to the broadband telemetry jitter it induces, anchored so a 90 dB band
// level shakes the tray by 0.004 track-pitch fractions (1σ). The anchor is
// the tray's mechanical-isolation calibration constant.
func wenzSigma(bandDB float64) float64 {
	return 0.004 * math.Pow(10, (bandDB-90)/20)
}

// The open-water scenario levels integrate the Wenz model over the
// servo-vulnerable band once at package init — the corpus presets are
// constants of the model, not per-run state.
var (
	shipBandSigma   = wenzSigma(water.AmbientBandLevel(300*units.Hz, 1400*units.Hz, 0.9, 3))
	rainBandSigma   = wenzSigma(water.AmbientBandLevel(300*units.Hz, 1400*units.Hz, 0.3, 13))
	shrimpBandSigma = wenzSigma(water.AmbientBandLevel(300*units.Hz, 1400*units.Hz, 0.2, 5))
)

// params returns the narrowband lines (appended to dst) and the broadband
// 1σ jitter for window w, drawing all randomness from rng in a fixed
// order so callers can continue the same stream afterwards.
func (a Ambient) params(w int, dst []AmbientComponent, rng *rand.Rand) ([]AmbientComponent, float64) {
	lvl := a.level()
	if lvl == 0 {
		return dst, 0
	}
	switch a.Kind {
	case AmbientShipTraffic:
		// Blade-rate fundamental drifting with the vessel's closest-point
		// approach; ten harmonics with a shallow roll-off.
		f0 := 42 + 8*math.Sin(2*math.Pi*float64(w)/96)
		for k := 1; k <= 10; k++ {
			dst = append(dst, AmbientComponent{
				Freq:  units.Frequency(f0 * float64(k)),
				Amp:   lvl * 0.008 / math.Pow(float64(k), 0.9),
				Phase: 2 * math.Pi * rng.Float64(),
			})
		}
		return dst, lvl * shipBandSigma
	case AmbientRain:
		env := 1 + 0.25*math.Sin(2*math.Pi*float64(w)/48)
		return dst, lvl * rainBandSigma * env
	case AmbientShrimp:
		sigma := 0.75 * lvl * shrimpBandSigma
		if rng.Float64() < 0.3 { // a crackle burst hits this window
			sigma = lvl * 0.02
		}
		return dst, sigma
	case AmbientPump:
		// Mains-rate line with harmonics into the vulnerable band; the
		// 360/480/600 Hz lines exceed a naive amplitude threshold.
		for k := 1; k <= 5; k++ {
			jitter := 0.95 + 0.1*rng.Float64()
			dst = append(dst, AmbientComponent{
				Freq:  units.Frequency(120 * k),
				Amp:   lvl * 0.05 * jitter / math.Sqrt(float64(k)),
				Phase: 2 * math.Pi * rng.Float64(),
			})
		}
		return dst, lvl * 0.004
	case AmbientCreak:
		sigma := lvl * 0.002
		if rng.Float64() < 0.08 { // a hull pop
			sigma = lvl * 0.03
		}
		return dst, sigma
	}
	return dst, 0
}

// Components appends window w's narrowband lines to dst and returns it.
func (a Ambient) Components(w int, dst []AmbientComponent) []AmbientComponent {
	dst, _ = a.params(w, dst, a.rng(w))
	return dst
}

// BroadbandSigma returns window w's broadband telemetry jitter (1σ,
// track-pitch fractions).
func (a Ambient) BroadbandSigma(w int) float64 {
	_, sigma := a.params(w, nil, a.rng(w))
	return sigma
}

// NominalSigma returns the scenario's baseline broadband jitter — the
// non-burst level experiments use to place a hostile tone at a target SNR
// over the ambient floor.
func (a Ambient) NominalSigma() float64 {
	lvl := a.level()
	switch a.Kind {
	case AmbientShipTraffic:
		return lvl * shipBandSigma
	case AmbientRain:
		return lvl * rainBandSigma
	case AmbientShrimp:
		return 0.75 * lvl * shrimpBandSigma
	case AmbientPump:
		return lvl * 0.004
	case AmbientCreak:
		return lvl * 0.002
	}
	return 0
}

// RenderInto adds window w's waveform into out at the given sample rate
// (out's length is the window length; existing contents are preserved so
// scenarios stack on top of the attack and sensor noise).
func (a Ambient) RenderInto(w int, sampleRateHz float64, out []float64) {
	a.RenderScaledInto(w, sampleRateHz, 1, out)
}

// RenderScaledInto is RenderInto with every sample multiplied by scale —
// the same (seed, kind, w) waveform re-expressed in another unit system.
// The exfil receiver uses it to hear the tray-telemetry corpus as pressure
// at a hydrophone (scale = µPa per track-pitch fraction); scale 1 is
// bit-identical to RenderInto.
func (a Ambient) RenderScaledInto(w int, sampleRateHz, scale float64, out []float64) {
	if a.Kind == AmbientNone || sampleRateHz <= 0 || len(out) == 0 || scale == 0 {
		return
	}
	rng := a.rng(w)
	var lines [16]AmbientComponent
	comps, sigma := a.params(w, lines[:0], rng)
	t0 := float64(w) * float64(len(out)) / sampleRateHz
	dt := 1 / sampleRateHz
	for _, c := range comps {
		wv := c.Freq.AngularVelocity()
		amp := scale * c.Amp
		for i := range out {
			out[i] += amp * math.Sin(wv*(t0+float64(i)*dt)+c.Phase)
		}
	}
	if sigma > 0 {
		// The noise draws continue the same per-window stream the line
		// parameters came from, so the whole window is one deterministic
		// function of (seed, kind, w).
		sigma *= scale
		for i := range out {
			out[i] += sigma * rng.NormFloat64()
		}
	}
}
