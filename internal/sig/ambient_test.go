package sig

import (
	"math"
	"testing"
)

func TestAmbientCorpusHasFiveScenarios(t *testing.T) {
	kinds := AmbientKinds()
	if len(kinds) != 5 {
		t.Fatalf("corpus has %d scenarios, want 5", len(kinds))
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if k == AmbientNone {
			t.Fatal("corpus must not include silence")
		}
		if seen[k.String()] {
			t.Fatalf("duplicate scenario name %q", k)
		}
		seen[k.String()] = true
	}
}

func TestAmbientRenderDeterministic(t *testing.T) {
	for _, k := range AmbientKinds() {
		a := NewAmbient(k, 7)
		w1 := make([]float64, 512)
		w2 := make([]float64, 512)
		a.RenderInto(3, 4096, w1)
		a.RenderInto(3, 4096, w2)
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatalf("%v: window 3 not reproducible at sample %d", k, i)
			}
		}
		// A different seed must produce a different realization.
		w3 := make([]float64, 512)
		NewAmbient(k, 8).RenderInto(3, 4096, w3)
		same := true
		for i := range w1 {
			if w1[i] != w3[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%v: seeds 7 and 8 rendered identically", k)
		}
	}
}

func TestAmbientRenderAddsEnergy(t *testing.T) {
	for _, k := range AmbientKinds() {
		a := NewAmbient(k, 1)
		var ms float64
		buf := make([]float64, 512)
		for w := 0; w < 32; w++ {
			for i := range buf {
				buf[i] = 0
			}
			a.RenderInto(w, 4096, buf)
			for _, x := range buf {
				ms += x * x
			}
		}
		rms := math.Sqrt(ms / float64(32*512))
		if rms <= 0 {
			t.Fatalf("%v rendered silence", k)
		}
		// Benign sources stay far below the servo-lock amplitude (0.45):
		// they are confusable with a stealthy tone, not with the attack.
		if rms > 0.1 {
			t.Fatalf("%v RMS = %.4f, implausibly loud for a benign source", k, rms)
		}
	}
}

func TestAmbientLevelPointerSemantics(t *testing.T) {
	a := NewAmbient(AmbientRain, 1)
	if a.BroadbandSigma(0) <= 0 {
		t.Fatal("nil Level must mean nominal, not silent")
	}
	zero := 0.0
	a.Level = &zero
	if a.BroadbandSigma(0) != 0 {
		t.Fatal("explicit Level 0 must be honored as silence")
	}
	buf := make([]float64, 64)
	a.RenderInto(0, 4096, buf)
	for _, x := range buf {
		if x != 0 {
			t.Fatal("explicit Level 0 must render nothing")
		}
	}
	double := 2.0
	a.Level = &double
	if got, want := a.NominalSigma(), 2*NewAmbient(AmbientRain, 1).NominalSigma(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Level scaling: σ = %g, want %g", got, want)
	}
}

func TestAmbientStructure(t *testing.T) {
	// The pump's comb: five harmonics of 120 Hz, three inside the
	// vulnerable band, each loud enough to trip a naive amplitude gate.
	pump := NewAmbient(AmbientPump, 3)
	comps := pump.Components(0, nil)
	if len(comps) != 5 {
		t.Fatalf("pump lines = %d, want 5", len(comps))
	}
	inBand := 0
	for i, c := range comps {
		if c.Freq.Hertz() != float64(120*(i+1)) {
			t.Fatalf("pump harmonic %d at %v, want %v Hz", i, c.Freq, 120*(i+1))
		}
		if c.Freq >= 300 && c.Freq <= 1400 {
			inBand++
			if c.Amp < 0.02 {
				t.Fatalf("in-band pump harmonic at %v too quiet (%.4f) to stress the classifier", c.Freq, c.Amp)
			}
		}
	}
	if inBand < 3 {
		t.Fatalf("pump puts %d harmonics in the vulnerable band, want ≥ 3", inBand)
	}
	// Rain and shrimp are pure broadband.
	for _, k := range []AmbientKind{AmbientRain, AmbientShrimp, AmbientCreak} {
		if got := NewAmbient(k, 3).Components(0, nil); len(got) != 0 {
			t.Fatalf("%v must have no narrowband lines, got %d", k, len(got))
		}
	}
	// Shrimp bursts: across many windows both loud and quiet ones occur.
	shrimp := NewAmbient(AmbientShrimp, 3)
	base := shrimp.NominalSigma()
	bursts, calm := 0, 0
	for w := 0; w < 64; w++ {
		if s := shrimp.BroadbandSigma(w); s > 2*base {
			bursts++
		} else {
			calm++
		}
	}
	if bursts == 0 || calm == 0 {
		t.Fatalf("shrimp bursts/calm = %d/%d, want a mix", bursts, calm)
	}
}

// TestRenderScaledInto pins the unit-conversion contract the exfil channel
// relies on: scale 1 is bit-identical to RenderInto, any other scale is an
// exact per-sample multiple of the same (seed, kind, w) waveform, and
// scale 0 renders nothing.
func TestRenderScaledInto(t *testing.T) {
	for _, kind := range AmbientKinds() {
		a := NewAmbient(kind, 11)
		const n, rate = 512, 4096.0
		for w := 0; w < 4; w++ {
			plain := make([]float64, n)
			a.RenderInto(w, rate, plain)
			unit := make([]float64, n)
			a.RenderScaledInto(w, rate, 1, unit)
			scaled := make([]float64, n)
			const scale = 7.25e6
			a.RenderScaledInto(w, rate, scale, scaled)
			zero := make([]float64, n)
			a.RenderScaledInto(w, rate, 0, zero)
			for i := 0; i < n; i++ {
				if unit[i] != plain[i] {
					t.Fatalf("%v w%d sample %d: scale-1 %g differs from RenderInto %g", kind, w, i, unit[i], plain[i])
				}
				if want := scale * plain[i]; math.Abs(scaled[i]-want) > 1e-9*math.Abs(want) {
					t.Fatalf("%v w%d sample %d: scaled %g, want %g", kind, w, i, scaled[i], want)
				}
				if zero[i] != 0 {
					t.Fatalf("%v w%d sample %d: scale-0 wrote %g", kind, w, i, zero[i])
				}
			}
		}
	}
}
