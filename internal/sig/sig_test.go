package sig

import (
	"math"
	"testing"
	"testing/quick"

	"deepnote/internal/units"
)

func TestToneSample(t *testing.T) {
	tone := NewTone(650 * units.Hz)
	if got := tone.Sample(0); got != 0 {
		t.Fatalf("Sample(0) = %v, want 0", got)
	}
	quarter := 1.0 / 650 / 4
	if got := tone.Sample(quarter); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Sample(T/4) = %v, want 1", got)
	}
}

func TestTonePhase(t *testing.T) {
	tone := Tone{Freq: 100, Amplitude: 1, Phase: math.Pi / 2}
	if got := tone.Sample(0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("phase-shifted Sample(0) = %v, want 1", got)
	}
}

func TestToneNormalize(t *testing.T) {
	tone := Tone{Freq: -5, Amplitude: 3}.Normalize()
	if tone.Amplitude != 1 || tone.Freq != 0 {
		t.Fatalf("Normalize = %+v, want amp 1 freq 0", tone)
	}
	tone = Tone{Freq: 100, Amplitude: -2}.Normalize()
	if tone.Amplitude != 0 {
		t.Fatalf("Normalize negative amp = %v, want 0", tone.Amplitude)
	}
}

func TestToneRMSMatchesSamples(t *testing.T) {
	tone := Tone{Freq: 650, Amplitude: 0.8}
	// Sample 10 whole periods densely.
	n := 10000
	rate := 650 * float64(n) / 10
	got := RMSOf(tone.Samples(rate, n))
	want := tone.RMS()
	if math.Abs(got-want) > 1e-3 {
		t.Fatalf("sampled RMS = %v, analytic = %v", got, want)
	}
}

func TestToneDriveDB(t *testing.T) {
	if got := float64(NewTone(650).DriveDB()); math.Abs(got) > 1e-12 {
		t.Fatalf("full scale drive = %v dBFS, want 0", got)
	}
	half := Tone{Freq: 650, Amplitude: 0.5}
	if got := float64(half.DriveDB()); math.Abs(got+6.0206) > 0.01 {
		t.Fatalf("half drive = %v dBFS, want ≈ -6.02", got)
	}
}

func TestSamplesEdgeCases(t *testing.T) {
	tone := NewTone(100)
	if got := tone.Samples(0, 10); got != nil {
		t.Fatal("zero sample rate should return nil")
	}
	if got := tone.Samples(1000, 0); got != nil {
		t.Fatal("zero count should return nil")
	}
	if got := RMSOf(nil); got != 0 {
		t.Fatal("RMSOf(nil) should be 0")
	}
}

func TestPaperSweepValid(t *testing.T) {
	p := PaperSweep()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	fs := p.CoarseFrequencies()
	if fs[0] != 100*units.Hz {
		t.Fatalf("sweep starts at %v, want 100Hz", fs[0])
	}
	if fs[len(fs)-1] != 16900*units.Hz {
		t.Fatalf("sweep ends at %v, want 16.9kHz", fs[len(fs)-1])
	}
}

func TestSweepValidation(t *testing.T) {
	bad := []SweepPlan{
		{Start: 0, End: 100, CoarseStep: 10, FineStep: 5, DwellSec: 1},
		{Start: 200, End: 100, CoarseStep: 10, FineStep: 5, DwellSec: 1},
		{Start: 100, End: 200, CoarseStep: 0, FineStep: 5, DwellSec: 1},
		{Start: 100, End: 200, CoarseStep: 10, FineStep: 50, DwellSec: 1},
		{Start: 100, End: 200, CoarseStep: 10, FineStep: 5, DwellSec: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestCoarseFrequenciesCoverage(t *testing.T) {
	p := SweepPlan{Start: 100, End: 1000, CoarseStep: 250, FineStep: 50, DwellSec: 1}
	fs := p.CoarseFrequencies()
	want := []units.Frequency{100, 350, 600, 850, 1000}
	if len(fs) != len(want) {
		t.Fatalf("got %v, want %v", fs, want)
	}
	for i := range want {
		if math.Abs(float64(fs[i]-want[i])) > 1e-6 {
			t.Fatalf("got %v, want %v", fs, want)
		}
	}
}

func TestRefineAround(t *testing.T) {
	p := PaperSweep()
	fs := p.RefineAround(650 * units.Hz)
	if fs[0] != 450*units.Hz {
		t.Fatalf("refine low edge = %v, want 450Hz", fs[0])
	}
	if fs[len(fs)-1] != 850*units.Hz {
		t.Fatalf("refine high edge = %v, want 850Hz", fs[len(fs)-1])
	}
	// 50 Hz spacing.
	for i := 1; i < len(fs); i++ {
		if step := fs[i] - fs[i-1]; math.Abs(float64(step-50)) > 1e-6 {
			t.Fatalf("refine step = %v, want 50Hz", step)
		}
	}
}

func TestRefineAroundClipsToBounds(t *testing.T) {
	p := PaperSweep()
	fs := p.RefineAround(150 * units.Hz)
	if fs[0] < p.Start {
		t.Fatalf("refinement escaped below sweep start: %v", fs[0])
	}
	fs = p.RefineAround(16850 * units.Hz)
	if fs[len(fs)-1] > p.End {
		t.Fatalf("refinement escaped above sweep end: %v", fs[len(fs)-1])
	}
}

func TestStepRangeExactGridPoints(t *testing.T) {
	// Regression: the old accumulating loop (f += step) compounded float64
	// error, so late points drifted off the nominal grid. Index-based
	// generation must yield bit-exact lo + i*step everywhere.
	p := SweepPlan{Start: 100, End: 16900, CoarseStep: 200, FineStep: 50, DwellSec: 5}
	fs := p.CoarseFrequencies()
	if len(fs) != 85 {
		t.Fatalf("point count = %d, want 85", len(fs))
	}
	for i, f := range fs {
		if want := p.Start + units.Frequency(i)*p.CoarseStep; f != want {
			t.Fatalf("point %d = %v, want exactly %v", i, f, want)
		}
	}

	// Fractional step: every point must still be exactly lo + i*step.
	lo, step := units.Frequency(100), units.Frequency(0.055)
	hi := lo + 1000*step
	got := stepRange(lo, hi, step)
	for i, f := range got {
		if want := lo + units.Frequency(i)*step; f != want {
			t.Fatalf("fractional point %d = %.17g, want exactly %.17g", i, float64(f), float64(want))
		}
	}
}

func TestStepRangeNoNearDuplicateTerminal(t *testing.T) {
	// A 100 Hz start, 200 Hz step sweep whose end lies on the grid must
	// end exactly at End — not at End plus an accumulated-error twin.
	fs := stepRange(100, 1700, 200)
	for i := 1; i < len(fs); i++ {
		if gap := fs[i] - fs[i-1]; gap < 100 {
			t.Fatalf("near-duplicate points %v and %v (gap %v)", fs[i-1], fs[i], gap)
		}
	}
	if fs[len(fs)-1] != 1700 {
		t.Fatalf("terminal point = %v, want 1700", fs[len(fs)-1])
	}
}

func TestFrequencyKey(t *testing.T) {
	a := units.Frequency(650.3)
	b := (a - 7.3) + 7.3 // ULP-different representation of the same value
	if FrequencyKey(a) != FrequencyKey(b) {
		t.Fatalf("ULP twins got distinct keys: %d vs %d", FrequencyKey(a), FrequencyKey(b))
	}
	if FrequencyKey(650) == FrequencyKey(650.05) {
		t.Fatal("50 mHz-distinct frequencies collided")
	}
}

func TestRefineAroundAllNoNearDuplicatesAcrossCenters(t *testing.T) {
	// Regression: two centers one CoarseStep apart produce overlapping
	// fine passes whose grids are computed from different origins. With a
	// fractional step the shared points differ by a ULP, and the old
	// exact-equality dedup kept both copies.
	p := SweepPlan{Start: 100, End: 2000, CoarseStep: 7.3, FineStep: 0.73, DwellSec: 1}
	c1 := units.Frequency(650.3)
	c2 := c1 + p.CoarseStep
	fs := p.RefineAroundAll([]units.Frequency{c1, c2})
	if len(fs) == 0 {
		t.Fatal("no refinement points")
	}
	for i := 1; i < len(fs); i++ {
		if gap := fs[i] - fs[i-1]; gap < p.FineStep/2 {
			t.Fatalf("near-duplicate frequencies %.17g and %.17g (gap %v)",
				float64(fs[i-1]), float64(fs[i]), gap)
		}
	}
}

func TestRefineAroundAllDedups(t *testing.T) {
	p := PaperSweep()
	fs := p.RefineAroundAll([]units.Frequency{600, 650})
	seen := map[units.Frequency]bool{}
	for _, f := range fs {
		if seen[f] {
			t.Fatalf("duplicate frequency %v", f)
		}
		seen[f] = true
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Fatal("frequencies not sorted")
		}
	}
}

func TestBandOps(t *testing.T) {
	b := Band{Low: 300, High: 1300}
	if !b.Contains(650) || b.Contains(1400) || !b.Contains(300) {
		t.Fatal("Contains misbehaves")
	}
	if b.Width() != 1000 {
		t.Fatalf("Width = %v, want 1000", b.Width())
	}
	if !b.Overlaps(Band{Low: 1200, High: 1700}) {
		t.Fatal("bands should overlap")
	}
	if b.Overlaps(Band{Low: 1400, High: 1700}) {
		t.Fatal("bands should not overlap")
	}
}

func TestCoalesceBands(t *testing.T) {
	freqs := []units.Frequency{300, 350, 400, 1200, 1250, 5000}
	bands := CoalesceBands(freqs, 100)
	if len(bands) != 3 {
		t.Fatalf("got %d bands %v, want 3", len(bands), bands)
	}
	if bands[0].Low != 300 || bands[0].High != 400 {
		t.Fatalf("band 0 = %v", bands[0])
	}
	if bands[1].Low != 1200 || bands[1].High != 1250 {
		t.Fatalf("band 1 = %v", bands[1])
	}
	if bands[2].Low != 5000 || bands[2].High != 5000 {
		t.Fatalf("band 2 = %v", bands[2])
	}
}

func TestCoalesceBandsUnsortedInput(t *testing.T) {
	freqs := []units.Frequency{400, 300, 350}
	bands := CoalesceBands(freqs, 100)
	if len(bands) != 1 || bands[0].Low != 300 || bands[0].High != 400 {
		t.Fatalf("got %v, want single [300,400]", bands)
	}
	if CoalesceBands(nil, 100) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestCoalesceBandsProperty(t *testing.T) {
	// Every input frequency must be contained in exactly one output band.
	prop := func(raw []uint16) bool {
		freqs := make([]units.Frequency, 0, len(raw))
		for _, r := range raw {
			freqs = append(freqs, units.Frequency(r))
		}
		bands := CoalesceBands(freqs, 50)
		for _, f := range freqs {
			n := 0
			for _, b := range bands {
				if b.Contains(f) {
					n++
				}
			}
			if n == 0 {
				return false
			}
		}
		// Bands must be disjoint and ordered.
		for i := 1; i < len(bands); i++ {
			if bands[i].Low <= bands[i-1].High {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
