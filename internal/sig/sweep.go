package sig

import (
	"fmt"
	"math"
	"sort"

	"deepnote/internal/units"
)

// SweepPlan describes a stepped frequency sweep: the procedure the paper's
// §4.1 uses to locate vulnerable frequencies. A coarse pass covers
// [Start, End] in CoarseStep increments; RefinePlan can then generate a
// fine pass in FineStep increments around frequencies found interesting.
type SweepPlan struct {
	// Start and End bound the sweep (inclusive).
	Start, End units.Frequency
	// CoarseStep is the coarse pass increment.
	CoarseStep units.Frequency
	// FineStep is the refinement increment used around vulnerable
	// frequencies (the paper narrows to 50 Hz).
	FineStep units.Frequency
	// DwellSec is how long the attacker holds each frequency while
	// observing the victim's throughput.
	DwellSec float64
}

// PaperSweep is the sweep the paper performs: 100 Hz to 16.9 kHz,
// narrowing to 50 Hz increments between vulnerable frequencies.
func PaperSweep() SweepPlan {
	return SweepPlan{
		Start:      100 * units.Hz,
		End:        16900 * units.Hz,
		CoarseStep: 200 * units.Hz,
		FineStep:   50 * units.Hz,
		DwellSec:   5,
	}
}

// Validate reports whether the plan is self-consistent.
func (p SweepPlan) Validate() error {
	if p.Start <= 0 || p.End <= 0 {
		return fmt.Errorf("sig: sweep bounds must be positive, got [%v, %v]", p.Start, p.End)
	}
	if p.End < p.Start {
		return fmt.Errorf("sig: sweep end %v before start %v", p.End, p.Start)
	}
	if p.CoarseStep <= 0 {
		return fmt.Errorf("sig: coarse step must be positive, got %v", p.CoarseStep)
	}
	if p.FineStep <= 0 || p.FineStep > p.CoarseStep {
		return fmt.Errorf("sig: fine step %v must be in (0, coarse step %v]", p.FineStep, p.CoarseStep)
	}
	if p.DwellSec <= 0 {
		return fmt.Errorf("sig: dwell must be positive, got %v", p.DwellSec)
	}
	return nil
}

// CoarseFrequencies returns the coarse pass frequencies, Start..End
// inclusive of End even when the last step overshoots.
func (p SweepPlan) CoarseFrequencies() []units.Frequency {
	return stepRange(p.Start, p.End, p.CoarseStep)
}

// RefineAround returns the fine-pass frequencies covering
// [center−CoarseStep, center+CoarseStep] clipped to the sweep bounds,
// in FineStep increments. This mirrors the paper's "narrowing to 50 Hz
// increments between vulnerable frequencies".
func (p SweepPlan) RefineAround(center units.Frequency) []units.Frequency {
	lo := center - p.CoarseStep
	hi := center + p.CoarseStep
	if lo < p.Start {
		lo = p.Start
	}
	if hi > p.End {
		hi = p.End
	}
	return stepRange(lo, hi, p.FineStep)
}

// RefineAroundAll merges fine passes around several centers, deduplicated
// and sorted ascending. Deduplication keys on FrequencyKey rather than
// exact float equality: fine passes around adjacent centers cover
// overlapping ranges whose grid points are computed from different
// origins, so the "same" nominal frequency can differ by a ULP between
// passes.
func (p SweepPlan) RefineAroundAll(centers []units.Frequency) []units.Frequency {
	seen := make(map[int64]bool)
	var out []units.Frequency
	for _, c := range centers {
		for _, f := range p.RefineAround(c) {
			if k := FrequencyKey(f); !seen[k] {
				seen[k] = true
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FrequencyKey quantizes a frequency to a 1 mHz grid for use as a
// deduplication key. Two frequencies that differ only by floating-point
// rounding (well below any physically meaningful resolution) map to the
// same key; genuinely distinct sweep points (≥ 1 Hz apart in practice)
// never collide.
func FrequencyKey(f units.Frequency) int64 {
	return int64(math.Round(float64(f) * 1000))
}

func stepRange(lo, hi, step units.Frequency) []units.Frequency {
	if step <= 0 || hi < lo {
		return nil
	}
	// Generate by index (lo + i*step) rather than accumulating f += step:
	// repeated addition compounds float64 rounding error across hundreds
	// of points, drifting the grid and — near the inclusive-end guard —
	// emitting a near-duplicate terminal point.
	var out []units.Frequency
	for i := 0; ; i++ {
		f := lo + units.Frequency(i)*step
		if f > hi+step/1e6 {
			break
		}
		out = append(out, f)
	}
	if len(out) == 0 || out[len(out)-1] < hi-step/1e6 {
		out = append(out, hi)
	}
	return out
}

// Band is a contiguous frequency interval, used to report vulnerable bands.
type Band struct {
	Low, High units.Frequency
}

// Contains reports whether f lies inside the band (inclusive).
func (b Band) Contains(f units.Frequency) bool { return f >= b.Low && f <= b.High }

// Width returns the band width.
func (b Band) Width() units.Frequency { return b.High - b.Low }

// Overlaps reports whether two bands intersect.
func (b Band) Overlaps(o Band) bool { return b.Low <= o.High && o.Low <= b.High }

// String renders the band.
func (b Band) String() string { return fmt.Sprintf("[%v, %v]", b.Low, b.High) }

// CoalesceBands merges a set of frequencies, in any order, into contiguous
// bands: after sorting a copy, consecutive frequencies closer than maxGap
// belong to the same band. It is how sweep results become "vulnerable from
// 300 Hz to 1.3 kHz" style statements. The input slice is not modified.
func CoalesceBands(freqs []units.Frequency, maxGap units.Frequency) []Band {
	if len(freqs) == 0 {
		return nil
	}
	sorted := make([]units.Frequency, len(freqs))
	copy(sorted, freqs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var bands []Band
	cur := Band{Low: sorted[0], High: sorted[0]}
	for _, f := range sorted[1:] {
		if f-cur.High <= maxGap {
			cur.High = f
			continue
		}
		bands = append(bands, cur)
		cur = Band{Low: f, High: f}
	}
	return append(bands, cur)
}
