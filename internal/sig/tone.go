// Package sig is the attack-side signal toolkit: pure tones, amplitude
// envelopes, and the frequency-sweep plans an attacker uses to discover a
// victim's vulnerable band. It plays the role GNU Radio plays in the paper's
// testbed — the thing that tells the speaker what to emit.
package sig

import (
	"fmt"
	"math"

	"deepnote/internal/units"
)

// Tone is a single sine wave at a fixed frequency with a drive level
// expressed as a linear amplitude in [0, 1] relative to full scale.
type Tone struct {
	// Freq is the tone frequency.
	Freq units.Frequency
	// Amplitude is the linear drive amplitude relative to full scale,
	// clamped to [0, 1] by Normalize.
	Amplitude float64
	// Phase is the initial phase in radians.
	Phase float64
}

// NewTone returns a full-scale tone at f.
func NewTone(f units.Frequency) Tone { return Tone{Freq: f, Amplitude: 1} }

// Normalize clamps the amplitude into [0, 1] and the frequency to ≥ 0.
func (t Tone) Normalize() Tone {
	if t.Amplitude < 0 {
		t.Amplitude = 0
	}
	if t.Amplitude > 1 {
		t.Amplitude = 1
	}
	if t.Freq < 0 {
		t.Freq = 0
	}
	return t
}

// Sample returns the instantaneous signal value at time tSec.
func (t Tone) Sample(tSec float64) float64 {
	return t.Amplitude * math.Sin(t.Freq.AngularVelocity()*tSec+t.Phase)
}

// RMS returns the root-mean-square value of the tone (A/√2).
func (t Tone) RMS() float64 { return t.Amplitude / math.Sqrt2 }

// DriveDB returns the drive level in dB relative to full scale (dBFS).
// A full-scale tone is 0 dBFS; half amplitude is ≈ −6 dBFS.
func (t Tone) DriveDB() units.Decibel { return units.AmplitudeRatioDB(t.Amplitude) }

// String renders the tone.
func (t Tone) String() string {
	return fmt.Sprintf("tone(%v, %.3g FS)", t.Freq, t.Amplitude)
}

// Samples renders n samples of the tone at the given sample rate into a
// freshly allocated slice. It is used by spectrum tests and by components
// that want a concrete waveform rather than an analytic description.
func (t Tone) Samples(sampleRateHz float64, n int) []float64 {
	if n <= 0 || sampleRateHz <= 0 {
		return nil
	}
	out := make([]float64, n)
	dt := 1 / sampleRateHz
	for i := range out {
		out[i] = t.Sample(float64(i) * dt)
	}
	return out
}

// RMSOf computes the RMS of a sample slice.
func RMSOf(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		sum += s * s
	}
	return math.Sqrt(sum / float64(len(samples)))
}
