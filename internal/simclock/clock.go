// Package simclock provides the deterministic virtual time base every
// stateful component of the simulation runs on. Experiments that take the
// paper minutes of wall-clock time (an 81-second crash run, a multi-hour
// sweep) execute in microseconds of real time, and rerunning an experiment
// with the same seed reproduces it bit-for-bit.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the time source used by simulated devices and workloads.
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Time
	// Sleep advances virtual time by d.
	Sleep(d time.Duration)
}

// Virtual is a deterministic, manually advanced clock. The zero value is
// not usable; construct with NewVirtual. Virtual is safe for concurrent
// use, though the simulation is predominantly single-goroutine by design.
type Virtual struct {
	mu  sync.Mutex
	now time.Time
	// sleeps counts Sleep calls, handy for tests asserting I/O happened.
	sleeps int
}

// NewVirtual returns a virtual clock starting at a fixed epoch so runs are
// reproducible. The epoch itself is arbitrary.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Date(2023, time.July, 9, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep advances the clock by d. Negative durations are ignored.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.now = v.now.Add(d)
	v.sleeps++
	v.mu.Unlock()
}

// Advance is an explicit alias of Sleep for simulation drivers, reading
// better at call sites that move time forward without modeling a wait.
func (v *Virtual) Advance(d time.Duration) { v.Sleep(d) }

// Since returns the virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleeps returns how many Sleep/Advance calls have been made.
func (v *Virtual) Sleeps() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.sleeps
}

// String renders the clock's current offset from its epoch.
func (v *Virtual) String() string {
	return fmt.Sprintf("virtual(+%s)", v.Since(time.Date(2023, time.July, 9, 0, 0, 0, 0, time.UTC)))
}

// Stopwatch measures elapsed virtual time between Start and Elapsed calls.
type Stopwatch struct {
	clock Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on the given clock.
func NewStopwatch(c Clock) *Stopwatch { return &Stopwatch{clock: c, start: c.Now()} }

// Restart resets the stopwatch origin to now.
func (s *Stopwatch) Restart() { s.start = s.clock.Now() }

// Elapsed returns the virtual time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now().Sub(s.start) }

// Seconds returns Elapsed in seconds as a float64.
func (s *Stopwatch) Seconds() float64 { return s.Elapsed().Seconds() }
