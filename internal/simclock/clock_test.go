package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtEpoch(t *testing.T) {
	a := NewVirtual()
	b := NewVirtual()
	if !a.Now().Equal(b.Now()) {
		t.Fatal("two fresh clocks must agree")
	}
}

func TestSleepAdvances(t *testing.T) {
	c := NewVirtual()
	t0 := c.Now()
	c.Sleep(81 * time.Second)
	if got := c.Since(t0); got != 81*time.Second {
		t.Fatalf("Since = %v, want 81s", got)
	}
	if c.Sleeps() != 1 {
		t.Fatalf("Sleeps = %d, want 1", c.Sleeps())
	}
}

func TestSleepIgnoresNonPositive(t *testing.T) {
	c := NewVirtual()
	t0 := c.Now()
	c.Sleep(0)
	c.Sleep(-time.Second)
	if !c.Now().Equal(t0) {
		t.Fatal("non-positive sleep must not move time")
	}
	if c.Sleeps() != 0 {
		t.Fatal("non-positive sleeps must not count")
	}
}

func TestAdvanceAliasesSleep(t *testing.T) {
	c := NewVirtual()
	c.Advance(time.Millisecond)
	if c.Since(NewVirtual().Now()) != time.Millisecond {
		t.Fatal("Advance did not move time")
	}
}

func TestConcurrentSleeps(t *testing.T) {
	c := NewVirtual()
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sleep(time.Millisecond)
		}()
	}
	wg.Wait()
	if got := c.Since(NewVirtual().Now()); got != 100*time.Millisecond {
		t.Fatalf("elapsed = %v, want 100ms", got)
	}
}

func TestStopwatch(t *testing.T) {
	c := NewVirtual()
	sw := NewStopwatch(c)
	c.Sleep(2500 * time.Millisecond)
	if got := sw.Elapsed(); got != 2500*time.Millisecond {
		t.Fatalf("Elapsed = %v", got)
	}
	if got := sw.Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v, want 2.5", got)
	}
	sw.Restart()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("after Restart Elapsed = %v, want 0", got)
	}
}

func TestStringMentionsOffset(t *testing.T) {
	c := NewVirtual()
	c.Sleep(time.Second)
	if s := c.String(); s == "" {
		t.Fatal("empty String()")
	}
}
