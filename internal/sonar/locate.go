package sonar

import (
	"fmt"
	"math"
	"sort"
	"time"

	"deepnote/internal/cluster"
	"deepnote/internal/metrics"
	"deepnote/internal/parallel"
	"deepnote/internal/units"
)

// Estimate is a multilaterated source position with uncertainty.
type Estimate struct {
	// Pos is the least-squares source position.
	Pos cluster.Vec3
	// Cov is the position covariance in m² (from the weighted normal
	// equations at the solution). For a planar fix the z row/column are
	// zero: depth was constrained, not estimated.
	Cov [3][3]float64
	// ErrRadius is the scalar one-sigma position uncertainty,
	// sqrt(trace(Cov)) — the radius the defense inflates the predicted
	// blast radius by.
	ErrRadius units.Distance
	// RMS is the weighted RMS range residual in meters at the solution.
	RMS float64
	// Used is how many hydrophones contributed measurements.
	Used int
	// Planar reports the 3-hydrophone fallback: x and y estimated with
	// depth fixed at the array's mean detecting-element depth.
	Planar bool
}

// Locate multilaterates the source position from one key-on event's
// receptions. Four or more detecting hydrophones give a full 3-D fix;
// exactly three fall back to a horizontal fix at the detecting elements'
// mean depth; fewer cannot multilaterate and return an error.
//
// The solver treats each detecting element's measured arrival as a
// pseudorange c·TOA_i = |x − p_i| + b with the shared bias b absorbing
// the unknown emission epoch (pure TDOA — the defender never learns when
// the attacker keyed on, only the pairwise arrival-time structure).
// Measurements are weighted by their per-element timing sigma, seeded
// with a deterministic coarse grid search, and refined by damped
// Gauss-Newton. Everything is closed-form floating point: the same
// receptions always produce the same fix.
func (a Array) Locate(recs []Reception) (Estimate, error) {
	a = a.withDefaults()
	c := a.Medium.SoundSpeed()

	var pos []cluster.Vec3
	var rho, w []float64 // pseudorange (m), weight (1/m)
	for _, r := range recs {
		if !r.Detected {
			continue
		}
		sig := r.Sigma.Seconds() * c
		if sig <= 0 {
			sig = 1e-6 * c
		}
		pos = append(pos, a.Hydrophones[r.Hydrophone].Pos)
		rho = append(rho, r.TOA.Seconds()*c)
		w = append(w, 1/sig)
	}
	if len(pos) < 3 {
		return Estimate{}, fmt.Errorf("sonar: %d detecting hydrophones, need >= 3 to multilaterate", len(pos))
	}
	zFix := 0.0
	for _, p := range pos {
		zFix += p.Z
	}
	zFix /= float64(len(pos))
	planar := len(pos) == 3

	x := gridSeed(pos, rho, w, planar, zFix)
	x, cov, rms, err := gaussNewton(pos, rho, w, x, planar, zFix)
	if err != nil && !planar {
		// With every detecting element on one arc the depth axis can be
		// unobservable even with ≥4 detections (the z column of the normal
		// matrix collapses onto the clock-bias column). Degrade to the
		// planar fix rather than fail: horizontal position is still well
		// conditioned, and that is what the blast-radius policy consumes.
		planar = true
		x = gridSeed(pos, rho, w, true, zFix)
		x, cov, rms, err = gaussNewton(pos, rho, w, x, true, zFix)
	}
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{Pos: x, Cov: cov, RMS: rms, Used: len(pos), Planar: planar}
	est.ErrRadius = units.Distance(math.Sqrt(cov[0][0] + cov[1][1] + cov[2][2]))
	return est, nil
}

// residualCost evaluates the weighted cost at trial position x with the
// clock bias eliminated analytically: for fixed geometry the optimal b is
// the weighted mean of (rho_i − d_i).
func residualCost(pos []cluster.Vec3, rho, w []float64, x cluster.Vec3) float64 {
	var sw, sb float64
	d := make([]float64, len(pos))
	for i, p := range pos {
		d[i] = x.Sub(p).Norm()
		ww := w[i] * w[i]
		sw += ww
		sb += ww * (rho[i] - d[i])
	}
	b := sb / sw
	cost := 0.0
	for i := range pos {
		r := (rho[i] - d[i] - b) * w[i]
		cost += r * r
	}
	return cost
}

// gridSeed scans a deterministic coarse grid over the plausible source
// volume (the hydrophone bounding box grown by the detection horizon) and
// returns the lowest-cost cell center — a convergence basin the local
// refinement cannot escape from toward a mirror solution.
func gridSeed(pos []cluster.Vec3, rho, w []float64, planar bool, zFix float64) cluster.Vec3 {
	lo, hi := pos[0], pos[0]
	for _, p := range pos[1:] {
		lo.X, lo.Y, lo.Z = math.Min(lo.X, p.X), math.Min(lo.Y, p.Y), math.Min(lo.Z, p.Z)
		hi.X, hi.Y, hi.Z = math.Max(hi.X, p.X), math.Max(hi.Y, p.Y), math.Max(hi.Z, p.Z)
	}
	// A detectable source lies within the largest pseudorange of every
	// element; grow the box by that horizon (floored so tank-scale arrays
	// still search a sensible neighborhood).
	horizon := 10.0
	for _, r := range rho {
		if r > horizon {
			horizon = r
		}
	}
	lo.X, lo.Y, lo.Z = lo.X-horizon, lo.Y-horizon, lo.Z-horizon
	hi.X, hi.Y, hi.Z = hi.X+horizon, hi.Y+horizon, hi.Z+horizon

	const n = 14
	best := cluster.Vec3{X: (lo.X + hi.X) / 2, Y: (lo.Y + hi.Y) / 2, Z: (lo.Z + hi.Z) / 2}
	if planar {
		best.Z = zFix
	}
	bestCost := residualCost(pos, rho, w, best)
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			x := cluster.Vec3{
				X: lo.X + (hi.X-lo.X)*float64(i)/n,
				Y: lo.Y + (hi.Y-lo.Y)*float64(j)/n,
			}
			kMax := n
			if planar {
				kMax = 0
			}
			for k := 0; k <= kMax; k++ {
				if planar {
					x.Z = zFix
				} else {
					x.Z = lo.Z + (hi.Z-lo.Z)*float64(k)/n
				}
				if cost := residualCost(pos, rho, w, x); cost < bestCost {
					bestCost, best = cost, x
				}
			}
		}
	}
	return best
}

// gaussNewton refines the fix with Levenberg-damped Gauss-Newton over
// (x, y, z, b) — or (x, y, b) for a planar fix — and returns the position
// covariance from the weighted normal equations at the solution.
func gaussNewton(pos []cluster.Vec3, rho, w []float64, x0 cluster.Vec3, planar bool, zFix float64) (cluster.Vec3, [3][3]float64, float64, error) {
	dim := 4 // x, y, z, b
	if planar {
		dim = 3 // x, y, b
		x0.Z = zFix
	}
	x := x0
	cost := residualCost(pos, rho, w, x)
	lambda := 1e-3
	var jtj [4][4]float64
	for iter := 0; iter < 80; iter++ {
		// Assemble the weighted normal equations. b is re-eliminated each
		// iteration inside residualCost; here it is an explicit unknown so
		// the covariance accounts for its correlation with position.
		var sw, sb float64
		d := make([]float64, len(pos))
		for i, p := range pos {
			d[i] = math.Max(x.Sub(p).Norm(), 1e-9)
			ww := w[i] * w[i]
			sw += ww
			sb += ww * (rho[i] - d[i])
		}
		b := sb / sw

		var jtr [4]float64
		jtj = [4][4]float64{}
		for i, p := range pos {
			u := x.Sub(p)
			// Residual r = rho − d − b; Jacobian of r wrt (x,y,z,b).
			var row [4]float64
			row[0] = -u.X / d[i]
			row[1] = -u.Y / d[i]
			if planar {
				row[2] = -1 // b occupies slot 2 in planar mode
			} else {
				row[2] = -u.Z / d[i]
				row[3] = -1
			}
			ri := rho[i] - d[i] - b
			ww := w[i] * w[i]
			for a := 0; a < dim; a++ {
				jtr[a] -= ww * row[a] * ri // step solves (JᵀWJ)δ = −JᵀWr
				for bb := 0; bb < dim; bb++ {
					jtj[a][bb] += ww * row[a] * row[bb]
				}
			}
		}
		damped := jtj
		for a := 0; a < dim; a++ {
			damped[a][a] *= 1 + lambda
		}
		step, ok := solve(damped, jtr, dim)
		if !ok {
			return x, [3][3]float64{}, 0, fmt.Errorf("sonar: degenerate array geometry, normal equations singular")
		}
		next := x
		next.X += step[0]
		next.Y += step[1]
		if !planar {
			next.Z += step[2]
		}
		if nextCost := residualCost(pos, rho, w, next); nextCost < cost {
			stepNorm := math.Sqrt(step[0]*step[0] + step[1]*step[1] + step[2]*step[2])
			x, cost = next, nextCost
			lambda = math.Max(lambda/3, 1e-9)
			if stepNorm < 1e-7 {
				break
			}
		} else {
			lambda *= 4
			if lambda > 1e9 {
				break
			}
		}
	}

	// Covariance: invert the undamped normal matrix and keep the position
	// block. Weights are 1/sigma_i, so JᵀWJ is already in 1/m² units.
	inv, ok := invert(jtj, dim)
	if !ok {
		return x, [3][3]float64{}, 0, fmt.Errorf("sonar: degenerate array geometry, covariance singular")
	}
	var cov [3][3]float64
	pdim := 3
	if planar {
		pdim = 2
	}
	for a := 0; a < pdim; a++ {
		for bb := 0; bb < pdim; bb++ {
			cov[a][bb] = inv[a][bb]
		}
	}
	rms := math.Sqrt(residualCost(pos, rho, w, x) / float64(len(pos)))
	return x, cov, rms, nil
}

// pivotTol returns the relative singularity threshold for a dim×dim
// matrix: pivots below 1e-12 of the largest entry magnitude are treated
// as zero. An absolute cutoff would misfire here — the weighted normal
// matrices carry w² factors that put entries anywhere from 1e-2 to 1e6.
func pivotTol(a [4][4]float64, dim int) float64 {
	maxAbs := 0.0
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			if v := math.Abs(a[r][c]); v > maxAbs {
				maxAbs = v
			}
		}
	}
	if maxAbs == 0 {
		return 1e-300
	}
	return 1e-12 * maxAbs
}

// solve performs Gaussian elimination with partial pivoting on the
// dim×dim system A·x = y.
func solve(a [4][4]float64, y [4]float64, dim int) ([4]float64, bool) {
	tol := pivotTol(a, dim)
	for col := 0; col < dim; col++ {
		piv := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < tol {
			return [4]float64{}, false
		}
		a[col], a[piv] = a[piv], a[col]
		y[col], y[piv] = y[piv], y[col]
		for r := col + 1; r < dim; r++ {
			f := a[r][col] / a[col][col]
			for cc := col; cc < dim; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			y[r] -= f * y[col]
		}
	}
	var x [4]float64
	for r := dim - 1; r >= 0; r-- {
		s := y[r]
		for cc := r + 1; cc < dim; cc++ {
			s -= a[r][cc] * x[cc]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

// invert inverts the dim×dim leading block of a by Gauss-Jordan
// elimination with partial pivoting.
func invert(a [4][4]float64, dim int) ([4][4]float64, bool) {
	var inv [4][4]float64
	for i := 0; i < dim; i++ {
		inv[i][i] = 1
	}
	tol := pivotTol(a, dim)
	for col := 0; col < dim; col++ {
		piv := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < tol {
			return inv, false
		}
		a[col], a[piv] = a[piv], a[col]
		inv[col], inv[piv] = inv[piv], inv[col]
		f := a[col][col]
		for cc := 0; cc < dim; cc++ {
			a[col][cc] /= f
			inv[col][cc] /= f
		}
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			for cc := 0; cc < dim; cc++ {
				a[r][cc] -= f * a[col][cc]
				inv[r][cc] -= f * inv[col][cc]
			}
		}
	}
	return inv, true
}

// Detection is one attacker key-on event as the surveillance layer saw
// it: which speaker keyed on, when, what the array heard, and the
// localization fix (when enough elements detected the tone).
type Detection struct {
	// Speaker indexes the layout's speaker that keyed on.
	Speaker int
	// KeyOn is the schedule offset at which the speaker started emitting.
	KeyOn time.Duration
	// Heard is how many hydrophones detected the tone.
	Heard int
	// FirstHeard is the offset at which the first element detected the
	// arrival (KeyOn + shortest propagation delay).
	FirstHeard time.Duration
	// FixAt is the offset at which the localization fix became available:
	// the last detecting element's arrival plus one processing window.
	FixAt time.Duration
	// Latency is FixAt − KeyOn, the detection latency the closed loop
	// pays before it can react.
	Latency time.Duration
	// OK reports whether multilateration produced a fix.
	OK bool
	// Est is the position estimate; valid only when OK.
	Est Estimate
	// Receptions are the per-element measurements.
	Receptions []Reception
}

// DetectSchedule runs the surveillance layer over an attack schedule:
// every speaker key-on is an onset event the array hears, times, and
// multilaterates independently (the keying-on transient separates
// same-frequency sources in time, so each onset is associated with its
// own TDOA set). Noise draws are seeded per onset event with
// parallel.SeedFor, so the detection timeline is byte-identical for any
// worker count of the surrounding experiment.
func DetectSchedule(lay cluster.Layout, a Array, steps []cluster.ScheduleStep, seed int64) []Detection {
	a = a.withDefaults()
	sorted := append([]cluster.ScheduleStep(nil), steps...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })

	var out []Detection
	active := make([]bool, len(lay.Speakers))
	event := 0
	for _, step := range sorted {
		for s := range lay.Speakers {
			on := step.Active != nil && s < len(step.Active) && step.Active[s]
			if on && !active[s] {
				recs := a.Receive(lay.Speakers[s].Pos, lay.Speakers[s].Tone, parallel.SeedFor(seed, event))
				event++
				det := Detection{Speaker: s, KeyOn: step.At, Receptions: recs}
				first, last := time.Duration(math.MaxInt64), time.Duration(0)
				for _, r := range recs {
					if !r.Detected {
						continue
					}
					det.Heard++
					if r.Delay < first {
						first = r.Delay
					}
					if r.TOA > last {
						last = r.TOA
					}
				}
				if det.Heard > 0 {
					det.FirstHeard = step.At + first
					det.FixAt = step.At + last + a.Window
					det.Latency = det.FixAt - step.At
					if est, err := a.Locate(recs); err == nil {
						det.OK = true
						det.Est = est
					}
				}
				out = append(out, det)
			}
			if step.Active == nil {
				active[s] = false
			} else {
				active[s] = on
			}
		}
	}
	return out
}

// PublishMetrics pushes the surveillance layer's counters (under the
// "sonar." prefix) into a registry. No-op on nil.
func PublishMetrics(reg *metrics.Registry, dets []Detection) {
	if reg == nil {
		return
	}
	for _, d := range dets {
		reg.Add("sonar.key_on_events", 1)
		reg.Add("sonar.receptions", int64(len(d.Receptions)))
		reg.Add("sonar.detections", int64(d.Heard))
		if !d.OK {
			reg.Add("sonar.missed_fixes", 1)
			continue
		}
		reg.Add("sonar.fixes", 1)
		reg.Observe("sonar.fix_latency_ns", int64(d.Latency))
		reg.MaxGauge("sonar.err_radius_m", float64(d.Est.ErrRadius))
	}
}
