// Package sonar is the defender's acoustic surveillance layer: hydrophone
// arrays placed on the 3-D cluster layout, per-hydrophone received-signal
// simulation through the same water propagation model the attack crosses,
// pairwise TDOA extraction, and least-squares multilateration yielding a
// position estimate with covariance.
//
// The threat model follows the Deep Note paper's follow-up work on active
// localization of close-range adversarial acoustic sources: the attacker
// must put acoustic energy into the water to damage drives, and that same
// energy reaches the facility's hydrophones first-hand. A speaker keying
// on is therefore a detection event — the array hears the tone after the
// propagation delay, integrates one processing window to extract stable
// time-of-arrival measurements, and multilaterates the source position
// from pairwise arrival-time differences. The estimate feeds the cluster's
// closed-loop Defense policy (internal/cluster), which steers reads and
// preemptively re-places shards out of the predicted blast radius.
//
// Everything here is deterministic: receptions draw their timing noise
// from per-(hydrophone, event) seeds derived with parallel.SeedFor, so
// detection timelines and fixes are byte-identical at any worker count.
package sonar

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"deepnote/internal/acoustics"
	"deepnote/internal/cluster"
	"deepnote/internal/parallel"
	"deepnote/internal/sig"
	"deepnote/internal/units"
	"deepnote/internal/water"
)

// Hydrophone is one fixed listening element of the array.
type Hydrophone struct {
	Name string
	Pos  cluster.Vec3
}

// Array is a hydrophone array deployed in the facility's water body.
type Array struct {
	// Hydrophones are the listening elements. Four or more (non-coplanar)
	// elements localize in 3-D; exactly three fall back to a horizontal
	// fix at the array's mean depth; fewer cannot multilaterate.
	Hydrophones []Hydrophone
	// Medium is the shared water body — use Layout.EffectiveMedium() so
	// the array hears through the same water the attack crosses.
	Medium water.Medium
	// SurfaceDepth, when positive, enables the Lloyd's-mirror surface
	// bounce on the propagation paths, matching cluster.Layout.
	SurfaceDepth units.Distance
	// Window is the processing window: how much signal the correlator
	// integrates before a TDOA fix is available (default 100 ms). It is
	// the dominant term of detection latency at facility scale, where
	// propagation delays are single-digit milliseconds.
	Window time.Duration
	// NoiseSPL is the ambient noise floor at each hydrophone (default
	// 70 dB re 1 µPa, a quiet-harbor figure). Received tones below
	// MinSNRdB above this floor are not detected.
	NoiseSPL units.SPL
	// MinSNRdB is the detection threshold in dB above the noise floor
	// (default 6 dB).
	MinSNRdB float64
}

// withDefaults resolves the zero-value knobs.
func (a Array) withDefaults() Array {
	if a.Window <= 0 {
		a.Window = 100 * time.Millisecond
	}
	if a.NoiseSPL == (units.SPL{}) {
		a.NoiseSPL = units.WaterSPL(70)
	}
	if a.MinSNRdB == 0 {
		a.MinSNRdB = 6
	}
	return a
}

// Validate checks the array geometry and medium.
func (a Array) Validate() error {
	if len(a.Hydrophones) == 0 {
		return fmt.Errorf("sonar: array has no hydrophones")
	}
	return a.Medium.Validate()
}

// RingArray places n hydrophones on a circle of the given radius around
// center in the horizontal plane, with alternating ±zStagger depth
// offsets so the array is non-coplanar and 3-D multilateration is well
// conditioned. The medium and surface depth are taken from the layout so
// the array hears through the water the attack actually crosses.
func RingArray(lay cluster.Layout, center cluster.Vec3, radius units.Distance, n int, zStagger units.Distance) Array {
	a := Array{
		Medium:       lay.EffectiveMedium(),
		SurfaceDepth: lay.SurfaceDepth,
	}
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		z := float64(zStagger)
		if i%2 == 1 {
			z = -z
		}
		a.Hydrophones = append(a.Hydrophones, Hydrophone{
			Name: fmt.Sprintf("hyd-%d", i),
			Pos: cluster.Vec3{
				X: center.X + float64(radius)*math.Cos(theta),
				Y: center.Y + float64(radius)*math.Sin(theta),
				Z: center.Z + z,
			},
		})
	}
	return a
}

// FacilityArray rings the layout's container field: the ring is centered
// on the container centroid with the given standoff beyond the farthest
// container. This is the standard surveillance deployment.
func FacilityArray(lay cluster.Layout, n int, standoff units.Distance) Array {
	c := ContainerCentroid(lay)
	maxR := 0.0
	for _, ct := range lay.Containers {
		if r := ct.Pos.Sub(c).Norm(); r > maxR {
			maxR = r
		}
	}
	return RingArray(lay, c, units.Distance(maxR)+standoff, n, 50*units.Centimeter)
}

// ContainerCentroid returns the mean container position.
func ContainerCentroid(lay cluster.Layout) cluster.Vec3 {
	var c cluster.Vec3
	if len(lay.Containers) == 0 {
		return c
	}
	for _, ct := range lay.Containers {
		c.X += ct.Pos.X
		c.Y += ct.Pos.Y
		c.Z += ct.Pos.Z
	}
	n := float64(len(lay.Containers))
	return cluster.Vec3{X: c.X / n, Y: c.Y / n, Z: c.Z / n}
}

// Centroid returns the mean hydrophone position.
func (a Array) Centroid() cluster.Vec3 {
	var c cluster.Vec3
	if len(a.Hydrophones) == 0 {
		return c
	}
	for _, h := range a.Hydrophones {
		c.X += h.Pos.X
		c.Y += h.Pos.Y
		c.Z += h.Pos.Z
	}
	n := float64(len(a.Hydrophones))
	return cluster.Vec3{X: c.X / n, Y: c.Y / n, Z: c.Z / n}
}

// Reception is what one hydrophone hears from one source keying on.
type Reception struct {
	// Hydrophone indexes the array element.
	Hydrophone int
	// Delay is the true propagation delay from source to element.
	Delay time.Duration
	// SPL is the received level after spreading, absorption, and the
	// optional surface-bounce interference.
	SPL units.SPL
	// SNRdB is the received level above the ambient noise floor.
	SNRdB float64
	// Detected reports whether the element heard the tone at all
	// (SNRdB ≥ MinSNRdB).
	Detected bool
	// TOA is the measured time of arrival relative to the source keying
	// on: the true delay plus SNR-dependent timing noise. Only valid
	// when Detected.
	TOA time.Duration
	// Sigma is the one-sigma timing error of the TOA measurement at this
	// element's SNR — the weight the multilateration solver uses. Only
	// valid when Detected.
	Sigma time.Duration
}

// minStandoff keeps the reception model out of the singular r→0 regime:
// a source cannot be closer to a hydrophone face than the paper's 1 cm
// point-blank reference geometry.
const minStandoff = 1 * units.Centimeter

// Receive simulates what every hydrophone hears when a source at pos
// keys on the given tone. The source is modeled with the paper's attack
// chain hardware (BG-2120 amplifier into an AQ339 projector) — the
// defender is localizing exactly the sources the attack model emits.
// seed isolates this event's noise draws; pass a distinct value per
// (event, source).
func (a Array) Receive(pos cluster.Vec3, tone sig.Tone, seed int64) []Reception {
	driven := acoustics.BG2120().Drive(tone)
	spk := acoustics.AQ339()
	return a.ReceiveLevel(pos, driven.Freq, spk.SourceLevel(driven), spk.RefDist, seed)
}

// ReceiveLevel is the generalized reception path: a narrowband source of
// arbitrary hardware at pos, described only by its frequency and source
// level at refDist. Receive delegates here with the attack-chain hardware;
// the exfiltration channel (internal/exfil) uses it directly with drive
// tray emissions, which are far quieter than any speaker the attack model
// owns. Propagation, SNR gating, and TOA noise match Receive exactly.
func (a Array) ReceiveLevel(pos cluster.Vec3, freq units.Frequency, src units.SPL, refDist units.Distance, seed int64) []Reception {
	a = a.withDefaults()
	c := a.Medium.SoundSpeed()
	out := make([]Reception, len(a.Hydrophones))
	for i, h := range a.Hydrophones {
		d := units.Distance(pos.Sub(h.Pos).Norm())
		if d < minStandoff {
			d = minStandoff
		}
		path := acoustics.Path{Medium: a.Medium, Distance: d, SurfaceDepth: a.SurfaceDepth}
		spl := src.Add(-path.TransmissionLoss(freq, refDist))
		snr := float64(spl.Sub(a.NoiseSPL))
		rec := Reception{
			Hydrophone: i,
			Delay:      time.Duration(float64(d) / c * float64(time.Second)),
			SPL:        spl,
			SNRdB:      snr,
		}
		if snr >= a.MinSNRdB {
			rec.Detected = true
			sigma := toaSigma(freq, snr)
			rec.Sigma = time.Duration(sigma * float64(time.Second))
			rng := rand.New(rand.NewSource(parallel.SeedFor(seed, i)))
			rec.TOA = rec.Delay + time.Duration(rng.NormFloat64()*sigma*float64(time.Second))
		}
		out[i] = rec
	}
	return out
}

// toaSigma is the one-sigma time-of-arrival measurement error in seconds
// for a tone at frequency f received at the given SNR (dB). The model is
// phase-noise-limited timing of a narrowband arrival, σ ≈ T/(2π·√(2·SNR))
// — the CRLB shape for a single-tone delay estimate — floored at 1 µs of
// sampling granularity. The keying-on transient resolves the tone's
// cycle ambiguity, so the estimate is absolute, not modulo one period.
func toaSigma(f units.Frequency, snrDB float64) float64 {
	if f <= 0 {
		return 1e-3
	}
	snrLin := math.Pow(10, snrDB/10)
	sigma := f.Period() / (2 * math.Pi * math.Sqrt(2*snrLin))
	if sigma < 1e-6 {
		sigma = 1e-6
	}
	return sigma
}
