package sonar

import (
	"math"
	"reflect"
	"testing"
	"time"

	"deepnote/internal/acoustics"
	"deepnote/internal/cluster"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

func testLayout() cluster.Layout {
	return cluster.LineLayout(6, 2*units.Meter)
}

func testArray(t *testing.T) Array {
	t.Helper()
	a := FacilityArray(testLayout(), 6, 3*units.Meter)
	if err := a.Validate(); err != nil {
		t.Fatalf("array invalid: %v", err)
	}
	return a
}

// TestLocateRecoversPosition places a source at known positions across
// ranges and depths and checks the fix lands within tolerance — and that
// the solver's own error radius is an honest (same order) accounting.
func TestLocateRecoversPosition(t *testing.T) {
	a := testArray(t)
	tone := sig.NewTone(650 * units.Hz)
	cases := []struct {
		name     string
		pos      cluster.Vec3
		minUsed  int
		planarOK bool
	}{
		{"point-blank-ct0", cluster.Vec3{X: 0.01}, 6, false},
		{"between-containers", cluster.Vec3{X: 5, Y: 0.5}, 6, false},
		// Past the hydrophone ring the far elements drop below the SNR
		// threshold: the fix survives on the near arc — depth becomes
		// unobservable there, so the planar fallback is acceptable.
		{"outside-ring", cluster.Vec3{X: 14, Y: 3}, 4, true},
		{"deep", cluster.Vec3{X: 5, Y: 1, Z: -4}, 6, false},
		{"shallow", cluster.Vec3{X: 2, Y: -2, Z: 1.5}, 6, false},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			recs := a.Receive(tc.pos, tone, int64(100+i))
			est, err := a.Locate(recs)
			if err != nil {
				t.Fatalf("Locate: %v", err)
			}
			miss := est.Pos.Sub(tc.pos).Norm()
			if est.ErrRadius <= 0 {
				t.Fatalf("ErrRadius = %v, want > 0", est.ErrRadius)
			}
			// Timing sigma at these SNRs is ~20-70 µs → decimeter-scale
			// range errors; weak-geometry axes are covered by the fix's
			// own covariance-derived error radius.
			if miss > 0.75+3*float64(est.ErrRadius) {
				t.Fatalf("fix missed true position by %.3f m with error radius %v (est %+v, true %+v)",
					miss, est.ErrRadius, est.Pos, tc.pos)
			}
			if hmiss := math.Hypot(est.Pos.X-tc.pos.X, est.Pos.Y-tc.pos.Y); hmiss > 0.75 {
				t.Fatalf("fix missed horizontally by %.3f m (est %+v, true %+v)", hmiss, est.Pos, tc.pos)
			}
			if est.Used < tc.minUsed {
				t.Fatalf("Used = %d, want >= %d", est.Used, tc.minUsed)
			}
			if est.Planar && !tc.planarOK {
				t.Fatalf("planar fallback with %d detections", est.Used)
			}
		})
	}
}

// TestLocateDegradesGracefully drops the array down to 3 and then 2
// detecting elements: 3 must still produce a (planar) fix, 2 must error
// rather than fabricate one.
func TestLocateDegradesGracefully(t *testing.T) {
	a := testArray(t)
	tone := sig.NewTone(650 * units.Hz)
	truth := cluster.Vec3{X: 5, Y: 0.5}
	recs := a.Receive(truth, tone, 7)

	three := recs[:3]
	est, err := a.Locate(three)
	if err != nil {
		t.Fatalf("Locate with 3 elements: %v", err)
	}
	if !est.Planar {
		t.Fatalf("3-element fix not flagged Planar")
	}
	if est.Used != 3 {
		t.Fatalf("Used = %d, want 3", est.Used)
	}
	// Horizontal miss only: depth was constrained, not estimated.
	dx, dy := est.Pos.X-truth.X, est.Pos.Y-truth.Y
	if miss := math.Hypot(dx, dy); miss > 2 {
		t.Fatalf("planar fix missed horizontally by %.3f m", miss)
	}

	if _, err := a.Locate(recs[:2]); err == nil {
		t.Fatalf("Locate with 2 elements succeeded, want error")
	}
	if _, err := a.Locate(nil); err == nil {
		t.Fatalf("Locate with no receptions succeeded, want error")
	}
}

// TestReceiveSNRFallsWithRange checks the physics wiring: farther
// hydrophones hear less, and a source far beyond the detection horizon
// is not detected at all.
func TestReceiveSNRFallsWithRange(t *testing.T) {
	a := testArray(t)
	tone := sig.NewTone(650 * units.Hz)
	near := a.Receive(a.Hydrophones[0].Pos, tone, 1)
	if !near[0].Detected {
		t.Fatalf("co-located source not detected")
	}
	for i := 1; i < len(near); i++ {
		if near[i].SNRdB >= near[0].SNRdB {
			t.Fatalf("hydrophone %d (farther) SNR %.1f ≥ co-located SNR %.1f", i, near[i].SNRdB, near[0].SNRdB)
		}
	}

	// 140 dB re 1µPa at 1 cm over a 70 dB floor dies into the noise at
	// tens of meters; 5 km is far past any detection horizon.
	far := a.Receive(cluster.Vec3{X: 5000}, tone, 1)
	for _, r := range far {
		if r.Detected {
			t.Fatalf("hydrophone %d detected a source 5 km away (SNR %.1f dB)", r.Hydrophone, r.SNRdB)
		}
	}
}

// TestDetectScheduleDeterministic runs the same staged schedule twice and
// checks the detection timeline is identical — the property the cluster
// determinism CI job leans on.
func TestDetectScheduleDeterministic(t *testing.T) {
	lay := testLayout().WithSpeakersAt(sig.NewTone(650*units.Hz), 0, 1, 2)
	a := FacilityArray(lay, 6, 3*units.Meter)
	steps := []cluster.ScheduleStep{
		{At: 100 * time.Millisecond, Active: []bool{true, false, false}},
		{At: 400 * time.Millisecond, Active: []bool{true, true, false}},
		{At: 700 * time.Millisecond, Active: []bool{true, true, true}},
	}
	d1 := DetectSchedule(lay, a, steps, 42)
	d2 := DetectSchedule(lay, a, steps, 42)
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("DetectSchedule not deterministic")
	}
	if len(d1) != 3 {
		t.Fatalf("got %d detections, want 3 (one per key-on)", len(d1))
	}
	for i, d := range d1 {
		if d.Speaker != i {
			t.Fatalf("detection %d localized speaker %d", i, d.Speaker)
		}
		if !d.OK {
			t.Fatalf("key-on %d produced no fix", i)
		}
		if d.Latency < a.Window {
			t.Fatalf("latency %v below one processing window %v", d.Latency, a.Window)
		}
		miss := d.Est.Pos.Sub(lay.Speakers[i].Pos).Norm()
		if miss > 0.75 {
			t.Fatalf("key-on %d fix missed by %.3f m", i, miss)
		}
	}

	// A different seed must change the noise draws but not detectability.
	d3 := DetectSchedule(lay, a, steps, 43)
	if reflect.DeepEqual(d1, d3) {
		t.Fatalf("seed had no effect on detection timeline")
	}
	for i := range d3 {
		if !d3[i].OK {
			t.Fatalf("seed 43 key-on %d produced no fix", i)
		}
	}
}

// TestDetectScheduleReKeying checks an all-silent step resets speaker
// state so a re-key is a fresh detection event.
func TestDetectScheduleReKeying(t *testing.T) {
	lay := testLayout().WithSpeakersAt(sig.NewTone(650*units.Hz), 0)
	a := FacilityArray(lay, 6, 3*units.Meter)
	steps := []cluster.ScheduleStep{
		{At: 100 * time.Millisecond, Active: []bool{true}},
		{At: 300 * time.Millisecond}, // key off
		{At: 500 * time.Millisecond, Active: []bool{true}},
	}
	dets := DetectSchedule(lay, a, steps, 9)
	if len(dets) != 2 {
		t.Fatalf("got %d detections, want 2 (re-key counts)", len(dets))
	}
	if dets[0].KeyOn != 100*time.Millisecond || dets[1].KeyOn != 500*time.Millisecond {
		t.Fatalf("key-on times %v, %v", dets[0].KeyOn, dets[1].KeyOn)
	}
}

// TestReceiveLevelDelegation pins the refactor that opened the reception
// path to arbitrary sources (the exfil channel's drive-tray emissions):
// Receive must remain byte-identical to ReceiveLevel fed the attack
// chain's own hardware parameters, and a quieter source through the same
// path must lose SNR, not gain it.
func TestReceiveLevelDelegation(t *testing.T) {
	a := testArray(t)
	pos := cluster.Vec3{X: 5, Y: 1, Z: 2}
	tone := sig.Tone{Freq: 780 * units.Hz, Amplitude: 0.9}
	const seed = 99

	driven := acoustics.BG2120().Drive(tone)
	spk := acoustics.AQ339()
	want := a.Receive(pos, tone, seed)
	got := a.ReceiveLevel(pos, driven.Freq, spk.SourceLevel(driven), spk.RefDist, seed)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("Receive diverged from its ReceiveLevel delegation:\n%+v\nvs\n%+v", want, got)
	}

	quiet := a.ReceiveLevel(pos, driven.Freq, spk.SourceLevel(driven).Add(-30), spk.RefDist, seed)
	for i := range quiet {
		if quiet[i].SNRdB >= want[i].SNRdB {
			t.Errorf("hydrophone %d: 30 dB quieter source did not lose SNR (%v vs %v)", i, quiet[i].SNRdB, want[i].SNRdB)
		}
	}
}
