// Package thermal models drive temperature inside a submerged enclosure:
// the surrounding water is the heat sink the paper's introduction credits
// for underwater data centers' cooling advantage, and the defenses of §5
// (linings, dampers, thicker walls) insulate against it. The model turns a
// defense's thermal penalty into concrete consequences — throttling and
// thermal shutdown — so defense evaluation can weigh acoustic protection
// against availability lost to heat, the exact trade-off the paper warns
// about (in-air defenses "may cause overheating").
package thermal

import (
	"fmt"

	"deepnote/internal/water"
)

// Limits are typical 3.5" drive thermal specifications.
const (
	// ThrottleAtC is where firmware begins throttling throughput.
	ThrottleAtC = 55.0
	// ShutdownAtC is the drive's thermal shutdown trip point.
	ShutdownAtC = 65.0
)

// State classifies a drive temperature.
type State int

// Thermal states.
const (
	OK State = iota
	Throttled
	Shutdown
)

// String names the state.
func (s State) String() string {
	switch s {
	case OK:
		return "ok"
	case Throttled:
		return "throttled"
	case Shutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Model computes steady-state drive temperature in an enclosure.
type Model struct {
	// Water is the external heat sink.
	Water water.Medium
	// IdleDeltaC is the drive's self-heating above ambient at idle.
	IdleDeltaC float64
	// LoadDeltaCPerMBps is additional self-heating per MB/s of sustained
	// throughput (seek activity dominates drive power).
	LoadDeltaCPerMBps float64
	// EnclosureDeltaC is the container's own insulation: how much warmer
	// the internal nitrogen sits above the water.
	EnclosureDeltaC float64
	// DefensePenaltyC accumulates the thermal penalties of installed
	// acoustic defenses.
	DefensePenaltyC float64
}

// Default returns the model for the paper's baseline enclosure in the
// given water.
func Default(w water.Medium) Model {
	return Model{
		Water:             w,
		IdleDeltaC:        8,
		LoadDeltaCPerMBps: 0.12,
		EnclosureDeltaC:   6,
	}
}

// WithDefensePenalty returns a copy with an added defense thermal cost.
func (m Model) WithDefensePenalty(deltaC float64) Model {
	m.DefensePenaltyC += deltaC
	return m
}

// DriveTempC returns the steady-state drive temperature at the given
// sustained throughput.
func (m Model) DriveTempC(loadMBps float64) float64 {
	if loadMBps < 0 {
		loadMBps = 0
	}
	return m.Water.TempC + m.EnclosureDeltaC + m.DefensePenaltyC +
		m.IdleDeltaC + m.LoadDeltaCPerMBps*loadMBps
}

// StateAt classifies the drive's thermal state at the given load.
func (m Model) StateAt(loadMBps float64) State {
	t := m.DriveTempC(loadMBps)
	switch {
	case t >= ShutdownAtC:
		return Shutdown
	case t >= ThrottleAtC:
		return Throttled
	default:
		return OK
	}
}

// ThrottleFactor returns the throughput multiplier firmware applies at the
// given load: 1 below the throttle point, ramping linearly to 0 at
// shutdown.
func (m Model) ThrottleFactor(loadMBps float64) float64 {
	t := m.DriveTempC(loadMBps)
	switch {
	case t < ThrottleAtC:
		return 1
	case t >= ShutdownAtC:
		return 0
	default:
		return 1 - (t-ThrottleAtC)/(ShutdownAtC-ThrottleAtC)
	}
}

// HeadroomC returns how many °C of defense penalty the enclosure can
// absorb at the given load before throttling begins. Negative headroom
// means the configuration already throttles.
func (m Model) HeadroomC(loadMBps float64) float64 {
	return ThrottleAtC - m.DriveTempC(loadMBps)
}

// MaxDefenseBudgetC returns the largest defense thermal penalty that keeps
// the drive out of throttling at the given sustained load — the number a
// deployment engineer actually needs when choosing a lining thickness.
func (m Model) MaxDefenseBudgetC(loadMBps float64) float64 {
	base := m
	base.DefensePenaltyC = 0
	return ThrottleAtC - base.DriveTempC(loadMBps)
}
