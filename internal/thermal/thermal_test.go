package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"deepnote/internal/water"
)

func TestColdWaterKeepsDriveOK(t *testing.T) {
	m := Default(water.Seawater(36)) // 12 °C sea
	if got := m.StateAt(22.7); got != OK {
		t.Fatalf("state at full load = %v, temp %.1f", got, m.DriveTempC(22.7))
	}
	if m.ThrottleFactor(22.7) != 1 {
		t.Fatal("cold water should not throttle")
	}
}

func TestTemperatureMonotoneInLoad(t *testing.T) {
	m := Default(water.FreshwaterTank())
	prop := func(a, b uint8) bool {
		la, lb := float64(a), float64(b)
		if la > lb {
			la, lb = lb, la
		}
		return m.DriveTempC(la) <= m.DriveTempC(lb)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	if m.DriveTempC(-5) != m.DriveTempC(0) {
		t.Fatal("negative load should clamp to idle")
	}
}

func TestDefensePenaltyPushesIntoThrottle(t *testing.T) {
	m := Default(water.Seawater(20)) // 12 + 6 + 8 = 26 °C idle
	load := 22.7
	base := m.DriveTempC(load)
	// A defense stack costing more than the headroom throttles the drive.
	headroom := m.HeadroomC(load)
	if headroom <= 0 {
		t.Fatalf("baseline should have headroom, temp %.1f", base)
	}
	hot := m.WithDefensePenalty(headroom + 5)
	if hot.StateAt(load) == OK {
		t.Fatalf("defense past headroom should throttle: %.1f °C", hot.DriveTempC(load))
	}
	if f := hot.ThrottleFactor(load); f >= 1 || f < 0 {
		t.Fatalf("throttle factor = %v", f)
	}
}

func TestShutdownAtExtremePenalty(t *testing.T) {
	m := Default(water.Seawater(20)).WithDefensePenalty(60)
	if m.StateAt(10) != Shutdown {
		t.Fatalf("state = %v at %.1f °C", m.StateAt(10), m.DriveTempC(10))
	}
	if m.ThrottleFactor(10) != 0 {
		t.Fatal("shutdown should zero throughput")
	}
}

func TestThrottleFactorContinuous(t *testing.T) {
	m := Default(water.Seawater(20))
	// Find the penalty that lands exactly on the throttle point; the
	// factor must decrease continuously past it.
	budget := m.MaxDefenseBudgetC(20)
	prev := 1.0
	for extra := 0.0; extra <= 12; extra += 1 {
		f := m.WithDefensePenalty(budget + extra).ThrottleFactor(20)
		if f > prev+1e-9 {
			t.Fatalf("throttle factor rose with heat at +%.0f°C", extra)
		}
		prev = f
	}
	if prev >= 1 {
		t.Fatal("factor never dropped below 1 across the ramp")
	}
}

func TestMaxDefenseBudgetIgnoresInstalledPenalty(t *testing.T) {
	m := Default(water.Seawater(20))
	if got, want := m.WithDefensePenalty(10).MaxDefenseBudgetC(5), m.MaxDefenseBudgetC(5); math.Abs(got-want) > 1e-9 {
		t.Fatalf("budget changed with installed penalty: %v != %v", got, want)
	}
}

func TestWarmShallowWaterHasLessBudget(t *testing.T) {
	cold := Default(water.Seawater(36))
	warm := Default(water.Medium{TempC: 28, SalinityPSU: 35, DepthM: 5, AcidityPH: 8})
	if warm.MaxDefenseBudgetC(20) >= cold.MaxDefenseBudgetC(20) {
		t.Fatal("warm shallow water must leave less thermal budget for defenses")
	}
}

func TestStateString(t *testing.T) {
	if OK.String() != "ok" || Throttled.String() != "throttled" || Shutdown.String() != "shutdown" {
		t.Fatal("state names")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should render")
	}
}
