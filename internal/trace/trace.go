// Package trace records time series against the virtual clock: bucketed
// throughput meters and named samples. Experiments use it to produce
// attack timelines — the paper's §3 first attacker objective is a
// *controlled* throughput loss for a chosen duration, which is inherently
// a statement about a time series.
package trace

import (
	"sort"
	"time"

	"deepnote/internal/simclock"
)

// Point is one sample: elapsed virtual time since the recorder started,
// and a value.
type Point struct {
	T time.Duration
	V float64
}

// Recorder stores named sample series against a virtual clock.
type Recorder struct {
	clock  simclock.Clock
	origin time.Time
	series map[string][]Point
}

// NewRecorder starts recording at the clock's current instant.
func NewRecorder(clock simclock.Clock) *Recorder {
	return &Recorder{clock: clock, origin: clock.Now(), series: make(map[string][]Point)}
}

// Record appends a sample to a named series at the current virtual time.
func (r *Recorder) Record(name string, v float64) {
	r.series[name] = append(r.series[name], Point{T: r.clock.Now().Sub(r.origin), V: v})
}

// Series returns a copy of a named series.
func (r *Recorder) Series(name string) []Point {
	return append([]Point(nil), r.series[name]...)
}

// Names returns the recorded series names, sorted.
func (r *Recorder) Names() []string {
	out := make([]string, 0, len(r.series))
	for n := range r.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Meter aggregates byte counts into fixed-width throughput buckets (MB/s
// per bucket of virtual time).
type Meter struct {
	clock  simclock.Clock
	origin time.Time
	width  time.Duration
	counts map[int]int64
}

// NewMeter starts a meter with the given bucket width.
func NewMeter(clock simclock.Clock, bucket time.Duration) *Meter {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Meter{clock: clock, origin: clock.Now(), width: bucket, counts: make(map[int]int64)}
}

// Add charges n bytes to the bucket covering the current virtual instant.
func (m *Meter) Add(n int64) {
	idx := int(m.clock.Now().Sub(m.origin) / m.width)
	m.counts[idx] += n
}

// BucketWidth returns the configured width.
func (m *Meter) BucketWidth() time.Duration { return m.width }

// lastBucket returns the highest bucket index covered by the meter: the
// last bucket touched by Add, extended through "now" so trailing silence
// is visible too. Returns -1 when nothing is covered yet.
func (m *Meter) lastBucket() int {
	last := -1
	for idx := range m.counts {
		if idx > last {
			last = idx
		}
	}
	if nowIdx := int(m.clock.Now().Sub(m.origin) / m.width); nowIdx-1 > last {
		last = nowIdx - 1
	}
	return last
}

// Buckets returns throughput points (bucket midpoint, MB/s) for every
// bucket from zero through the last bucket touched, including empty ones —
// an outage must show up as zeros, not be elided.
func (m *Meter) Buckets() []Point {
	last := m.lastBucket()
	out := make([]Point, 0, last+1)
	secs := m.width.Seconds()
	for i := 0; i <= last; i++ {
		out = append(out, Point{
			T: time.Duration(i)*m.width + m.width/2,
			V: float64(m.counts[i]) / 1e6 / secs,
		})
	}
	return out
}

// MeanMBps returns the mean throughput over the window [from, to), using
// overlap semantics: every bucket whose interval [i·w, (i+1)·w) overlaps
// the window contributes with equal weight. A window aligned to bucket
// edges therefore averages exactly the buckets inside it, and a window
// ending mid-bucket includes that partial bucket rather than silently
// dropping it. (The previous midpoint test excluded a boundary bucket
// whenever the window edge landed on or before its midpoint.)
func (m *Meter) MeanMBps(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	last := m.lastBucket()
	lo := int(from / m.width)
	if from < 0 {
		lo = 0
	}
	hi := int((to + m.width - 1) / m.width) // ceil(to/w)
	hi--
	if lo < 0 {
		lo = 0
	}
	if hi > last {
		hi = last
	}
	if hi < lo {
		return 0
	}
	secs := m.width.Seconds()
	var sum float64
	for i := lo; i <= hi; i++ {
		sum += float64(m.counts[i]) / 1e6 / secs
	}
	return sum / float64(hi-lo+1)
}
