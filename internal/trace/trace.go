// Package trace records time series against the virtual clock: bucketed
// throughput meters and named samples. Experiments use it to produce
// attack timelines — the paper's §3 first attacker objective is a
// *controlled* throughput loss for a chosen duration, which is inherently
// a statement about a time series.
package trace

import (
	"sort"
	"time"

	"deepnote/internal/simclock"
)

// Point is one sample: elapsed virtual time since the recorder started,
// and a value.
type Point struct {
	T time.Duration
	V float64
}

// Recorder stores named sample series against a virtual clock.
type Recorder struct {
	clock  simclock.Clock
	origin time.Time
	series map[string][]Point
}

// NewRecorder starts recording at the clock's current instant.
func NewRecorder(clock simclock.Clock) *Recorder {
	return &Recorder{clock: clock, origin: clock.Now(), series: make(map[string][]Point)}
}

// Record appends a sample to a named series at the current virtual time.
func (r *Recorder) Record(name string, v float64) {
	r.series[name] = append(r.series[name], Point{T: r.clock.Now().Sub(r.origin), V: v})
}

// Series returns a copy of a named series.
func (r *Recorder) Series(name string) []Point {
	return append([]Point(nil), r.series[name]...)
}

// Names returns the recorded series names, sorted.
func (r *Recorder) Names() []string {
	out := make([]string, 0, len(r.series))
	for n := range r.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Meter aggregates byte counts into fixed-width throughput buckets (MB/s
// per bucket of virtual time).
type Meter struct {
	clock  simclock.Clock
	origin time.Time
	width  time.Duration
	counts map[int]int64
}

// NewMeter starts a meter with the given bucket width.
func NewMeter(clock simclock.Clock, bucket time.Duration) *Meter {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &Meter{clock: clock, origin: clock.Now(), width: bucket, counts: make(map[int]int64)}
}

// Add charges n bytes to the bucket covering the current virtual instant.
func (m *Meter) Add(n int64) {
	idx := int(m.clock.Now().Sub(m.origin) / m.width)
	m.counts[idx] += n
}

// BucketWidth returns the configured width.
func (m *Meter) BucketWidth() time.Duration { return m.width }

// Buckets returns throughput points (bucket midpoint, MB/s) for every
// bucket from zero through the last bucket touched, including empty ones —
// an outage must show up as zeros, not be elided.
func (m *Meter) Buckets() []Point {
	last := -1
	for idx := range m.counts {
		if idx > last {
			last = idx
		}
	}
	// Extend through "now" so trailing silence is visible too.
	if nowIdx := int(m.clock.Now().Sub(m.origin) / m.width); nowIdx-1 > last {
		last = nowIdx - 1
	}
	out := make([]Point, 0, last+1)
	secs := m.width.Seconds()
	for i := 0; i <= last; i++ {
		out = append(out, Point{
			T: time.Duration(i)*m.width + m.width/2,
			V: float64(m.counts[i]) / 1e6 / secs,
		})
	}
	return out
}

// MeanMBps returns the mean throughput over [from, to) bucket times.
func (m *Meter) MeanMBps(from, to time.Duration) float64 {
	pts := m.Buckets()
	var sum float64
	n := 0
	for _, p := range pts {
		if p.T >= from && p.T < to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
