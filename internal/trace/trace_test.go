package trace

import (
	"testing"
	"time"

	"deepnote/internal/simclock"
)

func TestRecorder(t *testing.T) {
	clock := simclock.NewVirtual()
	r := NewRecorder(clock)
	r.Record("mbps", 18.0)
	clock.Advance(time.Second)
	r.Record("mbps", 0)
	r.Record("latency", 4.2)
	pts := r.Series("mbps")
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].T != 0 || pts[1].T != time.Second {
		t.Fatalf("timestamps %v", pts)
	}
	if pts[1].V != 0 {
		t.Fatalf("value %v", pts[1].V)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "latency" || names[1] != "mbps" {
		t.Fatalf("names %v", names)
	}
	if got := r.Series("missing"); got != nil {
		t.Fatal("missing series should be nil")
	}
}

func TestMeterBuckets(t *testing.T) {
	clock := simclock.NewVirtual()
	m := NewMeter(clock, time.Second)
	m.Add(2e6) // bucket 0
	clock.Advance(1500 * time.Millisecond)
	m.Add(1e6)                     // bucket 1
	clock.Advance(2 * time.Second) // buckets 2,3 silent
	m.Add(4e6)                     // bucket 3
	pts := m.Buckets()
	if len(pts) != 4 {
		t.Fatalf("buckets = %d, want 4", len(pts))
	}
	if pts[0].V != 2.0 || pts[1].V != 1.0 || pts[2].V != 0 || pts[3].V != 4.0 {
		t.Fatalf("values %v", pts)
	}
}

func TestMeterEmptyBucketsVisible(t *testing.T) {
	clock := simclock.NewVirtual()
	m := NewMeter(clock, time.Second)
	m.Add(1e6)
	clock.Advance(5 * time.Second)
	pts := m.Buckets()
	// Trailing silence through "now" must appear as zero buckets.
	if len(pts) != 5 {
		t.Fatalf("buckets = %d, want 5 (1 active + 4 silent)", len(pts))
	}
	for _, p := range pts[1:] {
		if p.V != 0 {
			t.Fatalf("silent bucket nonzero: %v", p)
		}
	}
}

func TestMeterMean(t *testing.T) {
	clock := simclock.NewVirtual()
	m := NewMeter(clock, time.Second)
	m.Add(2e6)
	clock.Advance(time.Second)
	m.Add(4e6)
	clock.Advance(time.Second)
	if got := m.MeanMBps(0, 2*time.Second); got != 3.0 {
		t.Fatalf("mean = %v, want 3", got)
	}
	if got := m.MeanMBps(10*time.Second, 20*time.Second); got != 0 {
		t.Fatalf("empty-window mean = %v", got)
	}
}

func TestMeterMeanOverlapSemantics(t *testing.T) {
	// Buckets: [0s,1s) holds 2 MB/s, [1s,2s) holds 4 MB/s.
	clock := simclock.NewVirtual()
	m := NewMeter(clock, time.Second)
	m.Add(2e6)
	clock.Advance(time.Second)
	m.Add(4e6)
	clock.Advance(time.Second)

	// Regression: the old midpoint test dropped bucket 1 for the window
	// [0.5s, 1.5s) because its midpoint (1.5s) is not < 1.5s. Overlap
	// semantics include every bucket the window touches.
	if got := m.MeanMBps(500*time.Millisecond, 1500*time.Millisecond); got != 3.0 {
		t.Fatalf("overlap mean over [0.5s,1.5s) = %v, want 3 (both buckets)", got)
	}
	// Edge-aligned windows cover exactly the buckets inside them.
	if got := m.MeanMBps(time.Second, 2*time.Second); got != 4.0 {
		t.Fatalf("mean over [1s,2s) = %v, want 4", got)
	}
	if got := m.MeanMBps(0, time.Second); got != 2.0 {
		t.Fatalf("mean over [0s,1s) = %v, want 2", got)
	}
	// A window ending mid-bucket includes that partial bucket.
	if got := m.MeanMBps(0, 1500*time.Millisecond); got != 3.0 {
		t.Fatalf("mean over [0s,1.5s) = %v, want 3", got)
	}
	// Degenerate and out-of-range windows are empty.
	if got := m.MeanMBps(time.Second, time.Second); got != 0 {
		t.Fatalf("zero-width window mean = %v", got)
	}
	if got := m.MeanMBps(2*time.Second, time.Second); got != 0 {
		t.Fatalf("inverted window mean = %v", got)
	}
}

func TestMeterDefaultBucket(t *testing.T) {
	m := NewMeter(simclock.NewVirtual(), 0)
	if m.BucketWidth() != time.Second {
		t.Fatal("default bucket should be 1s")
	}
}
