package units

import (
	"fmt"
	"math"
)

// Reference pressures for sound pressure level measurements. Underwater
// acoustics uses 1 µPa; airborne acoustics uses 20 µPa. The 26 dB offset
// between an in-air SPL figure and the equivalent underwater figure quoted
// in the paper (§2.2) falls directly out of these references:
//
//	SPL_water = SPL_air + 20·log10(20 µPa / 1 µPa) ≈ SPL_air + 26 dB
const (
	RefPressureWater Pressure = 1e-6  // 1 µPa
	RefPressureAir   Pressure = 20e-6 // 20 µPa
)

// SPL is a sound pressure level in dB relative to an explicit reference
// pressure. The zero value is meaningless; construct SPLs with NewSPL,
// SPLFromPressure, or the water/air helpers.
type SPL struct {
	// DB is the level in decibels relative to Ref.
	DB float64
	// Ref is the reference pressure the level is expressed against.
	Ref Pressure
}

// NewSPL builds an SPL from a dB figure and reference pressure.
func NewSPL(db float64, ref Pressure) SPL { return SPL{DB: db, Ref: ref} }

// WaterSPL builds an underwater SPL (re 1 µPa).
func WaterSPL(db float64) SPL { return SPL{DB: db, Ref: RefPressureWater} }

// AirSPL builds an in-air SPL (re 20 µPa).
func AirSPL(db float64) SPL { return SPL{DB: db, Ref: RefPressureAir} }

// SPLFromPressure converts an RMS pressure to a level against ref.
func SPLFromPressure(p Pressure, ref Pressure) SPL {
	if p <= 0 {
		return SPL{DB: math.Inf(-1), Ref: ref}
	}
	return SPL{DB: 20 * math.Log10(float64(p)/float64(ref)), Ref: ref}
}

// Pressure returns the RMS pressure corresponding to the level.
func (s SPL) Pressure() Pressure {
	return Pressure(float64(s.Ref) * math.Pow(10, s.DB/20))
}

// Rereference converts the level to a different reference pressure without
// changing the underlying physical pressure.
func (s SPL) Rereference(ref Pressure) SPL {
	return SPLFromPressure(s.Pressure(), ref)
}

// InWater re-expresses the level against the underwater reference (1 µPa).
func (s SPL) InWater() SPL { return s.Rereference(RefPressureWater) }

// InAir re-expresses the level against the in-air reference (20 µPa).
func (s SPL) InAir() SPL { return s.Rereference(RefPressureAir) }

// Add applies a gain (or, when negative, a loss) in dB and returns the new
// level against the same reference.
func (s SPL) Add(gain Decibel) SPL { return SPL{DB: s.DB + float64(gain), Ref: s.Ref} }

// Sub returns the gain in dB that separates s from o after converting o to
// s's reference. Positive means s is louder.
func (s SPL) Sub(o SPL) Decibel { return Decibel(s.DB - o.Rereference(s.Ref).DB) }

// String renders the level and identifies the reference convention.
func (s SPL) String() string {
	switch s.Ref {
	case RefPressureWater:
		return fmt.Sprintf("%.4gdB re 1µPa", s.DB)
	case RefPressureAir:
		return fmt.Sprintf("%.4gdB re 20µPa", s.DB)
	default:
		return fmt.Sprintf("%.4gdB re %.4gPa", s.DB, float64(s.Ref))
	}
}

// AirToWaterOffsetDB is the conventional offset added to an in-air SPL
// figure to express the same pressure underwater, per the paper's §2.2.
func AirToWaterOffsetDB() Decibel {
	return Decibel(20 * math.Log10(float64(RefPressureAir)/float64(RefPressureWater)))
}
