// Package units provides the physical unit types and decibel arithmetic
// shared by every layer of the Deep Note simulation: frequencies, distances,
// pressures, and sound pressure levels (SPL) referenced to the underwater
// (1 µPa) and in-air (20 µPa) conventions.
//
// All types are defined as float64 so they stay cheap and composable, but the
// distinct named types keep the APIs honest about what a number means: a
// Frequency is never silently used as a Distance, and an SPL is always tied
// to an explicit reference pressure.
package units

import (
	"fmt"
	"math"
)

// Frequency is a signal frequency in hertz.
type Frequency float64

// Common frequency constructors.
const (
	Hz  Frequency = 1
	KHz Frequency = 1000
)

// Hertz returns the frequency as a plain float64 in Hz.
func (f Frequency) Hertz() float64 { return float64(f) }

// Kilohertz returns the frequency in kHz.
func (f Frequency) Kilohertz() float64 { return float64(f) / 1000 }

// Period returns the period of one cycle in seconds. A non-positive
// frequency has no period and returns +Inf.
func (f Frequency) Period() float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return 1 / float64(f)
}

// AngularVelocity returns 2πf in radians per second.
func (f Frequency) AngularVelocity() float64 { return 2 * math.Pi * float64(f) }

// String renders the frequency using Hz or kHz as appropriate.
func (f Frequency) String() string {
	if math.Abs(float64(f)) >= 1000 {
		return fmt.Sprintf("%.4gkHz", float64(f)/1000)
	}
	return fmt.Sprintf("%.4gHz", float64(f))
}

// Distance is a length in meters.
type Distance float64

// Common distance constructors.
const (
	Meter      Distance = 1
	Centimeter Distance = 0.01
	Millimeter Distance = 0.001
	Kilometer  Distance = 1000
)

// Meters returns the distance as a plain float64 in meters.
func (d Distance) Meters() float64 { return float64(d) }

// Centimeters returns the distance in centimeters.
func (d Distance) Centimeters() float64 { return float64(d) * 100 }

// Kilometers returns the distance in kilometers.
func (d Distance) Kilometers() float64 { return float64(d) / 1000 }

// String renders the distance with a convenient unit.
func (d Distance) String() string {
	abs := math.Abs(float64(d))
	switch {
	case abs >= 1000:
		return fmt.Sprintf("%.4gkm", float64(d)/1000)
	case abs >= 1:
		return fmt.Sprintf("%.4gm", float64(d))
	case abs >= 0.01:
		return fmt.Sprintf("%.4gcm", float64(d)*100)
	default:
		return fmt.Sprintf("%.4gmm", float64(d)*1000)
	}
}

// Pressure is an acoustic pressure in pascals.
type Pressure float64

// Pressure unit constructors.
const (
	Pascal      Pressure = 1
	MicroPascal Pressure = 1e-6
)

// Pascals returns the pressure as a plain float64 in Pa.
func (p Pressure) Pascals() float64 { return float64(p) }

// Decibel is a ratio expressed in dB. It is used for gains and losses along
// the attack signal chain (amplifier gain, transmission loss, spreading
// loss), not for absolute levels — absolute levels are SPL values.
type Decibel float64

// Linear converts an amplitude-ratio decibel value to a linear factor
// (20·log10 convention).
func (g Decibel) Linear() float64 { return math.Pow(10, float64(g)/20) }

// PowerLinear converts a power-ratio decibel value to a linear factor
// (10·log10 convention).
func (g Decibel) PowerLinear() float64 { return math.Pow(10, float64(g)/10) }

// String renders the value with a dB suffix.
func (g Decibel) String() string { return fmt.Sprintf("%.4gdB", float64(g)) }

// AmplitudeRatioDB converts a linear amplitude ratio to decibels
// (20·log10 convention). A non-positive ratio maps to -Inf dB.
func AmplitudeRatioDB(ratio float64) Decibel {
	if ratio <= 0 {
		return Decibel(math.Inf(-1))
	}
	return Decibel(20 * math.Log10(ratio))
}

// PowerRatioDB converts a linear power ratio to decibels (10·log10
// convention). A non-positive ratio maps to -Inf dB.
func PowerRatioDB(ratio float64) Decibel {
	if ratio <= 0 {
		return Decibel(math.Inf(-1))
	}
	return Decibel(10 * math.Log10(ratio))
}
