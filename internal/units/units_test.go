package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestFrequencyConversions(t *testing.T) {
	f := 650 * Hz
	if got := f.Hertz(); got != 650 {
		t.Fatalf("Hertz() = %v, want 650", got)
	}
	if got := f.Kilohertz(); got != 0.65 {
		t.Fatalf("Kilohertz() = %v, want 0.65", got)
	}
	if got := (2 * KHz).Hertz(); got != 2000 {
		t.Fatalf("2 kHz = %v Hz, want 2000", got)
	}
}

func TestFrequencyPeriod(t *testing.T) {
	if got := (650 * Hz).Period(); !almostEqual(got, 1.0/650, 1e-12) {
		t.Fatalf("Period(650Hz) = %v, want %v", got, 1.0/650)
	}
	if got := Frequency(0).Period(); !math.IsInf(got, 1) {
		t.Fatalf("Period(0) = %v, want +Inf", got)
	}
	if got := Frequency(-5).Period(); !math.IsInf(got, 1) {
		t.Fatalf("Period(-5) = %v, want +Inf", got)
	}
}

func TestFrequencyAngularVelocity(t *testing.T) {
	if got := (1 * Hz).AngularVelocity(); !almostEqual(got, 2*math.Pi, 1e-12) {
		t.Fatalf("AngularVelocity(1Hz) = %v, want 2π", got)
	}
}

func TestFrequencyString(t *testing.T) {
	cases := []struct {
		f    Frequency
		want string
	}{
		{650 * Hz, "650Hz"},
		{1300 * Hz, "1.3kHz"},
		{16900 * Hz, "16.9kHz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String(%v Hz) = %q, want %q", float64(c.f), got, c.want)
		}
	}
}

func TestDistanceConversions(t *testing.T) {
	d := 25 * Centimeter
	if got := d.Meters(); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("Meters() = %v, want 0.25", got)
	}
	if got := d.Centimeters(); !almostEqual(got, 25, 1e-12) {
		t.Fatalf("Centimeters() = %v, want 25", got)
	}
	if got := (36 * Meter).Kilometers(); !almostEqual(got, 0.036, 1e-12) {
		t.Fatalf("Kilometers() = %v, want 0.036", got)
	}
}

func TestDistanceString(t *testing.T) {
	cases := []struct {
		d    Distance
		want string
	}{
		{1 * Centimeter, "1cm"},
		{36 * Meter, "36m"},
		{2 * Kilometer, "2km"},
		{5 * Millimeter, "5mm"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String(%v m) = %q, want %q", float64(c.d), got, c.want)
		}
	}
}

func TestDecibelLinear(t *testing.T) {
	if got := Decibel(20).Linear(); !almostEqual(got, 10, 1e-12) {
		t.Fatalf("20 dB linear = %v, want 10", got)
	}
	if got := Decibel(-6.0205999).Linear(); !almostEqual(got, 0.5, 1e-6) {
		t.Fatalf("-6.02 dB linear = %v, want 0.5", got)
	}
	if got := Decibel(10).PowerLinear(); !almostEqual(got, 10, 1e-12) {
		t.Fatalf("10 dB power linear = %v, want 10", got)
	}
}

func TestAmplitudeRatioDBRoundTrip(t *testing.T) {
	prop := func(r float64) bool {
		ratio := math.Abs(r)
		if ratio < 1e-9 || ratio > 1e9 || math.IsNaN(ratio) {
			return true // out of interesting domain
		}
		back := AmplitudeRatioDB(ratio).Linear()
		return almostEqual(back, ratio, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerRatioDBRoundTrip(t *testing.T) {
	prop := func(r float64) bool {
		ratio := math.Abs(r)
		if ratio < 1e-9 || ratio > 1e9 || math.IsNaN(ratio) {
			return true
		}
		back := PowerRatioDB(ratio).PowerLinear()
		return almostEqual(back, ratio, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioDBNonPositive(t *testing.T) {
	if got := AmplitudeRatioDB(0); !math.IsInf(float64(got), -1) {
		t.Fatalf("AmplitudeRatioDB(0) = %v, want -Inf", got)
	}
	if got := PowerRatioDB(-1); !math.IsInf(float64(got), -1) {
		t.Fatalf("PowerRatioDB(-1) = %v, want -Inf", got)
	}
}

func TestSPLPressureRoundTrip(t *testing.T) {
	s := WaterSPL(140)
	p := s.Pressure()
	back := SPLFromPressure(p, RefPressureWater)
	if !almostEqual(back.DB, 140, 1e-9) {
		t.Fatalf("round trip = %v dB, want 140", back.DB)
	}
	// 140 dB re 1 µPa is 10^7 µPa = 10 Pa.
	if !almostEqual(p.Pascals(), 10, 1e-9) {
		t.Fatalf("140 dB re 1µPa = %v Pa, want 10", p.Pascals())
	}
}

func TestAirToWaterOffsetIs26DB(t *testing.T) {
	// The paper's §2.2 states SPL_water = SPL_air + 26 dB.
	off := float64(AirToWaterOffsetDB())
	if math.Abs(off-26.02) > 0.01 {
		t.Fatalf("air-to-water offset = %v dB, want ≈26 dB", off)
	}
	s := AirSPL(114) // 114 dB re 20µPa
	w := s.InWater()
	if math.Abs(w.DB-(114+off)) > 1e-9 {
		t.Fatalf("InWater = %v dB, want %v", w.DB, 114+off)
	}
}

func TestSPLRereferencePreservesPressure(t *testing.T) {
	prop := func(db float64) bool {
		if math.Abs(db) > 300 || math.IsNaN(db) {
			return true
		}
		s := WaterSPL(db)
		return almostEqual(s.InAir().Pressure().Pascals(), s.Pressure().Pascals(), 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSPLAddSub(t *testing.T) {
	s := WaterSPL(140)
	s2 := s.Add(-28)
	if s2.DB != 112 {
		t.Fatalf("Add(-28) = %v, want 112", s2.DB)
	}
	if got := float64(s.Sub(s2)); !almostEqual(got, 28, 1e-12) {
		t.Fatalf("Sub = %v, want 28", got)
	}
	// Sub across references must convert first.
	air := AirSPL(114)
	water := air.InWater()
	if got := float64(water.Sub(air)); math.Abs(got) > 1e-9 {
		t.Fatalf("Sub of same pressure across refs = %v, want 0", got)
	}
}

func TestSPLFromNonPositivePressure(t *testing.T) {
	s := SPLFromPressure(0, RefPressureWater)
	if !math.IsInf(s.DB, -1) {
		t.Fatalf("SPLFromPressure(0) = %v, want -Inf", s.DB)
	}
}

func TestSPLString(t *testing.T) {
	if got := WaterSPL(140).String(); !strings.Contains(got, "1µPa") {
		t.Fatalf("water SPL string = %q, want 1µPa reference", got)
	}
	if got := AirSPL(114).String(); !strings.Contains(got, "20µPa") {
		t.Fatalf("air SPL string = %q, want 20µPa reference", got)
	}
	if got := NewSPL(100, Pressure(1)).String(); !strings.Contains(got, "re 1Pa") {
		t.Fatalf("custom SPL string = %q, want custom reference", got)
	}
}

func TestDecibelString(t *testing.T) {
	if got := Decibel(-28).String(); got != "-28dB" {
		t.Fatalf("Decibel.String = %q", got)
	}
}
