// Package vibration provides the modal-resonator primitives used to model
// every mechanically resonant element in the Deep Note chain: container
// walls, the storage tower, and the drive's head-stack assembly. The paper's
// causal story (§2.1) is that acoustic waves matching a structure's resonant
// frequencies amplify mechanical vibration; a bank of second-order resonators
// is the standard minimal model of that behaviour.
package vibration

import (
	"fmt"
	"math"

	"deepnote/internal/units"
)

// Mode is a single second-order resonance: natural frequency F0, quality
// factor Q, and a dimensionless gain applied at resonance. Its magnitude
// response follows the classic forced-oscillator transmissibility:
//
//	|H(f)| = Gain / sqrt((1 − r²)² + (r/Q)²),  r = f/F0
//
// normalized so that |H(F0)| = Gain·Q at resonance... (the bare form gives
// Gain·Q at r=1; callers choose Gain with that in mind).
type Mode struct {
	// F0 is the natural (resonant) frequency.
	F0 units.Frequency
	// Q is the quality factor; higher Q means a sharper, taller peak.
	Q float64
	// Gain is the low-frequency (static) gain of the mode.
	Gain float64
}

// Validate reports whether the mode parameters are physical.
func (m Mode) Validate() error {
	if m.F0 <= 0 {
		return fmt.Errorf("vibration: mode F0 must be positive, got %v", m.F0)
	}
	if m.Q <= 0 {
		return fmt.Errorf("vibration: mode Q must be positive, got %v", m.Q)
	}
	if m.Gain < 0 {
		return fmt.Errorf("vibration: mode gain must be non-negative, got %v", m.Gain)
	}
	return nil
}

// Response returns the magnitude response of the mode at frequency f.
func (m Mode) Response(f units.Frequency) float64 {
	if m.F0 <= 0 || m.Q <= 0 {
		return 0
	}
	r := float64(f) / float64(m.F0)
	denom := math.Sqrt((1-r*r)*(1-r*r) + (r/m.Q)*(r/m.Q))
	if denom == 0 {
		return m.Gain * m.Q
	}
	return m.Gain / denom
}

// PeakResponse returns the response at resonance, Gain·Q.
func (m Mode) PeakResponse() float64 { return m.Gain * m.Q }

// HalfPowerBand returns the approximate −3 dB band of the mode,
// [F0(1−1/2Q), F0(1+1/2Q)].
func (m Mode) HalfPowerBand() (lo, hi units.Frequency) {
	half := float64(m.F0) / (2 * m.Q)
	return m.F0 - units.Frequency(half), m.F0 + units.Frequency(half)
}

// String renders the mode.
func (m Mode) String() string {
	return fmt.Sprintf("mode(f0=%v Q=%.3g gain=%.3g)", m.F0, m.Q, m.Gain)
}

// Stack is a set of modes acting in parallel on the same excitation; the
// magnitude responses add in power (incoherent sum), which avoids fragile
// phase-cancellation artifacts while preserving peak structure.
type Stack []Mode

// Validate validates every mode in the stack.
func (s Stack) Validate() error {
	for i, m := range s {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("vibration: mode %d: %w", i, err)
		}
	}
	return nil
}

// Response returns the incoherent (power-summed) magnitude response of the
// stack at frequency f. An empty stack passes the excitation through
// unchanged (response 1), so optional structural elements compose cleanly.
func (s Stack) Response(f units.Frequency) float64 {
	if len(s) == 0 {
		return 1
	}
	var sum float64
	for _, m := range s {
		r := m.Response(f)
		sum += r * r
	}
	return math.Sqrt(sum)
}

// PeakFrequency returns the frequency in [lo, hi] (searched in step
// increments) where the stack's response is largest, along with the
// response value. It is used by tests and by attackers characterizing a
// structure.
func (s Stack) PeakFrequency(lo, hi, step units.Frequency) (units.Frequency, float64) {
	bestF := lo
	bestR := -1.0
	for f := lo; f <= hi; f += step {
		if r := s.Response(f); r > bestR {
			bestR = r
			bestF = f
		}
	}
	return bestF, bestR
}
