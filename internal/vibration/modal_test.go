package vibration

import (
	"math"
	"testing"
	"testing/quick"

	"deepnote/internal/units"
)

func TestModeResponseAtResonance(t *testing.T) {
	m := Mode{F0: 650, Q: 5, Gain: 2}
	got := m.Response(650)
	if math.Abs(got-10) > 1e-9 {
		t.Fatalf("Response(F0) = %v, want Gain*Q = 10", got)
	}
	if m.PeakResponse() != 10 {
		t.Fatalf("PeakResponse = %v, want 10", m.PeakResponse())
	}
}

func TestModeResponseDC(t *testing.T) {
	m := Mode{F0: 650, Q: 5, Gain: 2}
	if got := m.Response(0); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Response(0) = %v, want static gain 2", got)
	}
}

func TestModeResponseRollsOffAboveResonance(t *testing.T) {
	m := Mode{F0: 650, Q: 5, Gain: 1}
	// Far above resonance the response falls as 1/r².
	r10 := m.Response(6500)
	if r10 > 0.011 || r10 < 0.009 {
		t.Fatalf("Response(10*F0) = %v, want ≈0.01", r10)
	}
}

func TestModeResponsePeaksNearF0(t *testing.T) {
	m := Mode{F0: 650, Q: 8, Gain: 1}
	peak := m.Response(650)
	for _, f := range []units.Frequency{100, 300, 500, 900, 1300, 5000} {
		if m.Response(f) >= peak {
			t.Fatalf("response at %v exceeds resonance peak", f)
		}
	}
}

func TestModeHalfPowerBand(t *testing.T) {
	m := Mode{F0: 1000, Q: 10, Gain: 1}
	lo, hi := m.HalfPowerBand()
	if math.Abs(float64(lo-950)) > 1e-6 || math.Abs(float64(hi-1050)) > 1e-6 {
		t.Fatalf("half power band = [%v, %v], want [950, 1050]", lo, hi)
	}
	// Response at band edges should be ≈ peak/√2 (within the standard
	// narrowband approximation).
	peak := m.Response(1000)
	edge := m.Response(lo)
	if math.Abs(edge/peak-1/math.Sqrt2) > 0.05 {
		t.Fatalf("edge/peak = %v, want ≈0.707", edge/peak)
	}
}

func TestModeValidate(t *testing.T) {
	good := Mode{F0: 100, Q: 1, Gain: 0}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mode{{F0: 0, Q: 1, Gain: 1}, {F0: 100, Q: 0, Gain: 1}, {F0: 100, Q: 1, Gain: -1}} {
		if err := m.Validate(); err == nil {
			t.Errorf("expected error for %+v", m)
		}
	}
}

func TestDegenerateModeResponse(t *testing.T) {
	if got := (Mode{F0: 0, Q: 1, Gain: 1}).Response(100); got != 0 {
		t.Fatalf("degenerate mode response = %v, want 0", got)
	}
}

func TestEmptyStackIsTransparent(t *testing.T) {
	var s Stack
	if got := s.Response(650); got != 1 {
		t.Fatalf("empty stack response = %v, want 1", got)
	}
}

func TestStackPowerSum(t *testing.T) {
	a := Mode{F0: 400, Q: 4, Gain: 1}
	b := Mode{F0: 900, Q: 4, Gain: 1}
	s := Stack{a, b}
	got := s.Response(650)
	want := math.Hypot(a.Response(650), b.Response(650))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("stack response = %v, want %v", got, want)
	}
}

func TestStackValidate(t *testing.T) {
	s := Stack{{F0: 100, Q: 1, Gain: 1}, {F0: 0, Q: 1, Gain: 1}}
	if err := s.Validate(); err == nil {
		t.Fatal("expected validation error for bad mode in stack")
	}
	if err := (Stack{{F0: 100, Q: 1, Gain: 1}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStackPeakFrequency(t *testing.T) {
	s := Stack{{F0: 700, Q: 10, Gain: 1}, {F0: 1500, Q: 3, Gain: 1}}
	f, r := s.PeakFrequency(100, 2000, 10)
	if math.Abs(float64(f-700)) > 10 {
		t.Fatalf("peak at %v, want ≈700", f)
	}
	if r < 9 {
		t.Fatalf("peak response = %v, want ≈10", r)
	}
}

func TestStackResponseNonNegativeProperty(t *testing.T) {
	prop := func(f0 uint16, q, gain uint8, f uint16) bool {
		m := Mode{
			F0:   units.Frequency(f0%10000) + 1,
			Q:    float64(q%50) + 0.5,
			Gain: float64(gain % 10),
		}
		s := Stack{m, m}
		return s.Response(units.Frequency(f)) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestModeStringNonEmpty(t *testing.T) {
	if (Mode{F0: 650, Q: 3, Gain: 1}).String() == "" {
		t.Fatal("empty String()")
	}
}
