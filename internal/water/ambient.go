// Ambient ocean noise after Wenz (1962), in the compact form of Coates'
// approximations: four independent processes — oceanic turbulence,
// distant shipping, wind/sea-surface agitation (which also stands in for
// rain, acoustically a very high effective sea state), and thermal noise —
// summed as powers. This grounds the benign ambient-source corpus the
// attack fingerprinter must not confuse with a hostile tone: the spectral
// *level* of ship traffic or rain at the datacenter hull comes from here,
// while the *structure* (blade-rate combs, shrimp impulses) is synthesized
// in internal/sig.
package water

import (
	"math"

	"deepnote/internal/units"
)

// AmbientNoiseLevel returns the deep-water ambient noise spectral level
// in dB re 1 µPa²/Hz at frequency f. shipping is the Wenz shipping-density
// factor in [0, 1] (0 = remote, 1 = heavy traffic lanes); windMS is the
// surface wind speed in m/s. Inputs are clamped to their physical domains.
func AmbientNoiseLevel(f units.Frequency, shipping, windMS float64) float64 {
	fk := f.Hertz() / 1000 // the classic fits use kHz
	if fk < 1e-3 {
		fk = 1e-3
	}
	shipping = math.Min(1, math.Max(0, shipping))
	windMS = math.Max(0, windMS)

	turbulence := 17 - 30*math.Log10(fk)
	ship := 40 + 20*(shipping-0.5) + 26*math.Log10(fk) - 60*math.Log10(fk+0.03)
	wind := 50 + 7.5*math.Sqrt(windMS) + 20*math.Log10(fk) - 40*math.Log10(fk+0.4)
	thermal := -15 + 20*math.Log10(fk)

	sum := 0.0
	for _, l := range [...]float64{turbulence, ship, wind, thermal} {
		sum += math.Pow(10, l/10)
	}
	return 10 * math.Log10(sum)
}

// AmbientBandLevel integrates the ambient spectral level over [lo, hi]
// and returns the band level in dB re 1 µPa — the single number that
// drives how much broadband jitter a benign source injects into the
// drive-tray telemetry. The integral runs on a fixed logarithmic grid so
// the result is deterministic and resolution-independent enough for the
// corpus presets.
func AmbientBandLevel(lo, hi units.Frequency, shipping, windMS float64) float64 {
	if hi <= lo || lo <= 0 {
		return math.Inf(-1)
	}
	const steps = 256
	ratio := math.Pow(hi.Hertz()/lo.Hertz(), 1/float64(steps))
	var power float64
	f := lo.Hertz()
	for i := 0; i < steps; i++ {
		next := f * ratio
		mid := math.Sqrt(f * next) // geometric midpoint of the sub-band
		level := AmbientNoiseLevel(units.Frequency(mid), shipping, windMS)
		power += math.Pow(10, level/10) * (next - f)
		f = next
	}
	return 10 * math.Log10(power)
}
