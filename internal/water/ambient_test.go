package water

import (
	"math"
	"testing"

	"deepnote/internal/units"
)

func TestAmbientNoiseLevelShape(t *testing.T) {
	// More wind means more noise in the wind-dominated band.
	calm := AmbientNoiseLevel(650*units.Hz, 0.3, 1)
	gale := AmbientNoiseLevel(650*units.Hz, 0.3, 15)
	if gale <= calm {
		t.Fatalf("wind must raise the 650 Hz level: calm %.1f vs gale %.1f dB", calm, gale)
	}
	// Shipping dominates the low band but barely moves the kHz range:
	// the shipping spectrum peaks near 50–100 Hz and rolls off fast.
	shipLow := AmbientNoiseLevel(80*units.Hz, 1, 5) - AmbientNoiseLevel(80*units.Hz, 0, 5)
	shipHigh := AmbientNoiseLevel(5*units.KHz, 1, 5) - AmbientNoiseLevel(5*units.KHz, 0, 5)
	if shipLow < 3 {
		t.Fatalf("heavy shipping must lift the 80 Hz level (Δ = %.2f dB)", shipLow)
	}
	if shipHigh > shipLow/2 {
		t.Fatalf("shipping delta must concentrate at low frequency: low %.2f vs high %.2f dB", shipLow, shipHigh)
	}
	// Levels stay in the physically plausible Wenz corridor across the
	// servo-vulnerable band.
	for f := 100 * units.Hz; f <= 2*units.KHz; f += 100 * units.Hz {
		l := AmbientNoiseLevel(f, 0.5, 7)
		if l < 30 || l > 110 {
			t.Fatalf("level at %v = %.1f dB, outside the Wenz corridor", f, l)
		}
	}
}

func TestAmbientBandLevel(t *testing.T) {
	quiet := AmbientBandLevel(300*units.Hz, 1400*units.Hz, 0.2, 2)
	loud := AmbientBandLevel(300*units.Hz, 1400*units.Hz, 0.9, 13)
	if loud <= quiet {
		t.Fatalf("band level must grow with shipping and wind: %.1f vs %.1f dB", quiet, loud)
	}
	// Band level exceeds the spectral level (it integrates > 1 Hz).
	spectral := AmbientNoiseLevel(650*units.Hz, 0.2, 2)
	if quiet <= spectral {
		t.Fatalf("band level %.1f dB must exceed the spectral level %.1f dB", quiet, spectral)
	}
	if !math.IsInf(AmbientBandLevel(500*units.Hz, 400*units.Hz, 0.5, 5), -1) {
		t.Fatal("inverted band must return -Inf")
	}
	if !math.IsInf(AmbientBandLevel(0, 400*units.Hz, 0.5, 5), -1) {
		t.Fatal("zero lower edge must return -Inf")
	}
}
