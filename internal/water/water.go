// Package water models the underwater acoustic medium the Deep Note attack
// propagates through: sound speed (Medwin's equation), density, and
// frequency-dependent absorption (Ainslie & McColm's simplification of the
// Fisher–Simmons / François–Garrison formulation, the same family of models
// the paper cites for attenuation, e.g. 0.038 dB/km at 500 Hz in the Baltic).
//
// The medium is a small value type: temperature in °C, salinity in PSU
// (practical salinity units, ≈ parts per thousand), and depth in meters.
// Freshwater tank experiments use Salinity ≈ 0; ocean deployments like
// Project Natick use ≈ 35 PSU at tens of meters of depth.
package water

import (
	"fmt"
	"math"

	"deepnote/internal/units"
)

// Medium describes the water column at the attack site.
type Medium struct {
	// TempC is the water temperature in degrees Celsius.
	TempC float64
	// SalinityPSU is the salinity in practical salinity units (≈ ‰).
	SalinityPSU float64
	// DepthM is the depth of the propagation path in meters.
	DepthM float64
	// AcidityPH is the pH of the water; it affects the boric-acid
	// relaxation term of low-frequency absorption. Seawater is ≈ 8.
	//
	// Convention: 0 means "unset" and is substituted with the seawater
	// default of 8 wherever pH enters the model (Absorption). Validate
	// accepts 0 under the same convention; any explicit non-zero value
	// must lie in the fitted domain [6, 9]. A physically pH-0 water
	// column is far outside the empirical model's domain, so the zero
	// value is safe to reserve as the sentinel.
	AcidityPH float64
}

// FreshwaterTank is the paper's laboratory condition: a freshwater tank at
// room temperature with the container just below the surface.
func FreshwaterTank() Medium {
	return Medium{TempC: 21, SalinityPSU: 0, DepthM: 0.5, AcidityPH: 7}
}

// Seawater returns a typical open-ocean condition at the given depth,
// matching the deployments the paper discusses (Microsoft's Natick at ~36 m,
// the Hainan data center at ~20 m).
func Seawater(depthM float64) Medium {
	return Medium{TempC: 12, SalinityPSU: 35, DepthM: depthM, AcidityPH: 8}
}

// BalticAt50m approximates the brackish Baltic condition the paper quotes
// for the 0.038 dB/km @ 500 Hz attenuation figure [47].
func BalticAt50m() Medium {
	return Medium{TempC: 6, SalinityPSU: 8, DepthM: 50, AcidityPH: 7.9}
}

// Validate reports whether the medium parameters are within the domains the
// underlying empirical equations were fitted for.
func (m Medium) Validate() error {
	if m.TempC < -2 || m.TempC > 40 {
		return fmt.Errorf("water: temperature %.1f°C outside model domain [-2, 40]", m.TempC)
	}
	if m.SalinityPSU < 0 || m.SalinityPSU > 45 {
		return fmt.Errorf("water: salinity %.1f PSU outside model domain [0, 45]", m.SalinityPSU)
	}
	if m.DepthM < 0 || m.DepthM > 11000 {
		return fmt.Errorf("water: depth %.1f m outside model domain [0, 11000]", m.DepthM)
	}
	if m.AcidityPH != 0 && (m.AcidityPH < 6 || m.AcidityPH > 9) {
		return fmt.Errorf("water: pH %.2f outside model domain [6, 9] (0 means unset and defaults to 8)", m.AcidityPH)
	}
	return nil
}

// SoundSpeed returns the speed of sound in m/s using Medwin's (1975) simple
// equation for realistic parameters, the formulation the paper cites [30]:
//
//	c = 1449.2 + 4.6T − 0.055T² + 0.00029T³ + (1.34 − 0.010T)(S − 35) + 0.016z
func (m Medium) SoundSpeed() float64 {
	t := m.TempC
	s := m.SalinityPSU
	z := m.DepthM
	return 1449.2 + 4.6*t - 0.055*t*t + 0.00029*t*t*t + (1.34-0.010*t)*(s-35) + 0.016*z
}

// Density returns an approximate water density in kg/m³ as a linear
// perturbation around 1000 kg/m³ for temperature, salinity, and pressure.
// (UNESCO-grade equations of state are unnecessary at the fidelity of this
// simulation; the dominant effect on coupling is the ~3% swing between
// fresh and saline water.)
func (m Medium) Density() float64 {
	return 1000 - 0.15*(m.TempC-10) + 0.78*m.SalinityPSU + 0.0045*m.DepthM
}

// CharacteristicImpedance returns ρc in rayl (Pa·s/m), the quantity that
// governs how much acoustic pressure couples into a submerged structure.
func (m Medium) CharacteristicImpedance() float64 {
	return m.Density() * m.SoundSpeed()
}

// Absorption returns the absorption coefficient α in dB/km at frequency f,
// using the Ainslie & McColm (1998) simplified formula: a boric-acid
// relaxation term, a magnesium-sulfate relaxation term, and a viscous term.
// For freshwater (S≈0) the relaxation terms vanish and only the viscous
// term remains, which is why tank-scale experiments see effectively zero
// absorption — matching the paper's observation that attenuation only
// matters at long range.
func (m Medium) Absorption(f units.Frequency) float64 {
	fkHz := f.Kilohertz()
	if fkHz <= 0 {
		return 0
	}
	t := m.TempC
	s := m.SalinityPSU
	zkm := m.DepthM / 1000
	ph := m.AcidityPH
	if ph == 0 {
		ph = 8 // the documented unset convention: default to seawater pH
	}

	// Relaxation frequencies (kHz).
	f1 := 0.78 * math.Sqrt(math.Max(s, 0)/35) * math.Exp(t/26)
	f2 := 42 * math.Exp(t/17)

	f2kHz := fkHz * fkHz

	var boric, magsulf float64
	if s > 0 && f1 > 0 {
		boric = 0.106 * (f1 * f2kHz / (f2kHz + f1*f1)) * math.Exp((ph-8)/0.56)
	}
	if s > 0 {
		magsulf = 0.52 * (1 + t/43) * (s / 35) * (f2 * f2kHz / (f2kHz + f2*f2)) * math.Exp(-zkm/6)
	}
	viscous := 0.00049 * f2kHz * math.Exp(-(t/27 + zkm/17))
	return boric + magsulf + viscous
}

// AbsorptionLoss returns the absorption loss in dB over distance d at
// frequency f. Tank-scale distances yield losses far below a millidecibel.
func (m Medium) AbsorptionLoss(f units.Frequency, d units.Distance) units.Decibel {
	return units.Decibel(m.Absorption(f) * d.Kilometers())
}

// Wavelength returns the acoustic wavelength in meters at frequency f.
func (m Medium) Wavelength(f units.Frequency) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return m.SoundSpeed() / f.Hertz()
}

// String summarizes the medium.
func (m Medium) String() string {
	return fmt.Sprintf("water(T=%.1f°C S=%.1fPSU z=%.1fm c=%.0fm/s)",
		m.TempC, m.SalinityPSU, m.DepthM, m.SoundSpeed())
}
