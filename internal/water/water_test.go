package water

import (
	"math"
	"testing"
	"testing/quick"

	"deepnote/internal/units"
)

func TestMedwinSoundSpeedKnownPoints(t *testing.T) {
	cases := []struct {
		name string
		m    Medium
		want float64
		tol  float64
	}{
		// Medwin's equation at S=35, z=0, T=10 gives ≈ 1490 m/s.
		{"ocean 10C", Medium{TempC: 10, SalinityPSU: 35, DepthM: 0}, 1490, 3},
		// Pure water at 21°C: canonical ≈ 1485 m/s.
		{"fresh 21C", FreshwaterTank(), 1485, 5},
	}
	for _, c := range cases {
		got := c.m.SoundSpeed()
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s: SoundSpeed = %.1f, want %.1f ± %.1f", c.name, got, c.want, c.tol)
		}
	}
}

func TestSoundSpeedMonotonicity(t *testing.T) {
	// Paper §5: temperature, salinity, and depth each increase sound speed
	// (in the operating range below ~35°C for temperature).
	base := Seawater(20)
	warmer := base
	warmer.TempC += 5
	if warmer.SoundSpeed() <= base.SoundSpeed() {
		t.Error("warmer water should carry sound faster")
	}
	saltier := base
	saltier.SalinityPSU += 5
	if saltier.SoundSpeed() <= base.SoundSpeed() {
		t.Error("saltier water should carry sound faster")
	}
	deeper := base
	deeper.DepthM += 100
	if deeper.SoundSpeed() <= base.SoundSpeed() {
		t.Error("deeper water should carry sound faster")
	}
}

func TestSoundSpeedFasterThanAir(t *testing.T) {
	// §2.2: sound travels roughly 4x faster in water than in air (343 m/s).
	for _, m := range []Medium{FreshwaterTank(), Seawater(36), BalticAt50m()} {
		c := m.SoundSpeed()
		if c < 3.9*343 || c > 4.7*343 {
			t.Errorf("%v: c=%.0f m/s, want ≈4x air speed", m, c)
		}
	}
}

func TestAbsorptionBalticFigure(t *testing.T) {
	// Paper §4.2 quotes 0.038 dB/km for a 500 Hz signal at 50 m depth in the
	// Baltic. Ainslie–McColm with brackish parameters should land within a
	// small factor of that figure.
	m := BalticAt50m()
	a := m.Absorption(500 * units.Hz)
	if a < 0.005 || a > 0.15 {
		t.Fatalf("Baltic absorption at 500 Hz = %.4f dB/km, want order 0.038", a)
	}
}

func TestAbsorptionFreshwaterViscousOnly(t *testing.T) {
	m := FreshwaterTank()
	// At 650 Hz the viscous term is ≈ 0.00049*0.4225*exp(-21/27) ≈ 1e-4 dB/km.
	a := m.Absorption(650 * units.Hz)
	if a <= 0 || a > 0.001 {
		t.Fatalf("freshwater absorption at 650 Hz = %v dB/km, want tiny positive", a)
	}
	// Over 25 cm the loss must be utterly negligible (<< 1e-3 dB).
	loss := float64(m.AbsorptionLoss(650*units.Hz, 25*units.Centimeter))
	if loss > 1e-6 {
		t.Fatalf("tank-scale absorption loss = %v dB, want ≈0", loss)
	}
}

func TestAbsorptionIncreasesWithFrequency(t *testing.T) {
	m := Seawater(36)
	prev := 0.0
	for _, f := range []units.Frequency{100, 500, 1000, 5000, 16900} {
		a := m.Absorption(f)
		if a <= prev {
			t.Fatalf("absorption not increasing at %v: %v <= %v", f, a, prev)
		}
		prev = a
	}
}

func TestAbsorptionNonNegativeProperty(t *testing.T) {
	prop := func(fHz, temp, sal float64) bool {
		f := units.Frequency(math.Abs(math.Mod(fHz, 20000)))
		m := Medium{
			TempC:       math.Abs(math.Mod(temp, 35)),
			SalinityPSU: math.Abs(math.Mod(sal, 40)),
			DepthM:      10,
			AcidityPH:   8,
		}
		return m.Absorption(f) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorptionZeroAtZeroFrequency(t *testing.T) {
	if got := Seawater(10).Absorption(0); got != 0 {
		t.Fatalf("Absorption(0) = %v, want 0", got)
	}
}

func TestDensityAndImpedance(t *testing.T) {
	fresh := FreshwaterTank()
	sea := Seawater(36)
	if fresh.Density() < 990 || fresh.Density() > 1005 {
		t.Fatalf("fresh density = %v, want ≈1000", fresh.Density())
	}
	if sea.Density() <= fresh.Density() {
		t.Fatal("seawater must be denser than freshwater")
	}
	z := fresh.CharacteristicImpedance()
	if z < 1.4e6 || z > 1.6e6 {
		t.Fatalf("freshwater impedance = %v rayl, want ≈1.48e6", z)
	}
}

func TestWavelength(t *testing.T) {
	m := FreshwaterTank()
	wl := m.Wavelength(650 * units.Hz)
	want := m.SoundSpeed() / 650
	if math.Abs(wl-want) > 1e-9 {
		t.Fatalf("Wavelength = %v, want %v", wl, want)
	}
	if !math.IsInf(m.Wavelength(0), 1) {
		t.Fatal("Wavelength(0) should be +Inf")
	}
}

func TestValidate(t *testing.T) {
	good := []Medium{FreshwaterTank(), Seawater(36), BalticAt50m()}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("%v: unexpected validation error %v", m, err)
		}
	}
	bad := []Medium{
		{TempC: 80},
		{TempC: 10, SalinityPSU: 99},
		{TempC: 10, DepthM: 20000},
		{TempC: 10, AcidityPH: 3},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", m)
		}
	}
}

func TestStringContainsSpeed(t *testing.T) {
	s := FreshwaterTank().String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}

// TestAbsorptionPHUnsetDefaultsToSeawater pins the documented zero-value
// convention: AcidityPH == 0 means "unset" and must absorb exactly like
// an explicit seawater pH of 8 — not like a (physically absurd) pH-0
// column, which would collapse the boric-acid term by e^(-8/0.56).
func TestAbsorptionPHUnsetDefaultsToSeawater(t *testing.T) {
	unset := Seawater(36)
	unset.AcidityPH = 0
	explicit := Seawater(36)
	explicit.AcidityPH = 8
	for _, f := range []units.Frequency{500 * units.Hz, 5 * units.KHz, 50 * units.KHz} {
		a0, a8 := unset.Absorption(f), explicit.Absorption(f)
		if a0 != a8 {
			t.Fatalf("at %v: pH-unset absorption %.9f != pH-8 absorption %.9f", f, a0, a8)
		}
		// And a genuinely different pH must actually change the answer,
		// so the test cannot pass vacuously.
		acidic := explicit
		acidic.AcidityPH = 7
		if a7 := acidic.Absorption(f); a7 >= a8 {
			t.Fatalf("at %v: pH 7 absorption %.9f not below pH 8 absorption %.9f", f, a7, a8)
		}
	}
}

// TestAbsorptionFreshwaterPHIndependent: with S=0 the boric-acid term is
// gone entirely, so pH (set or unset) cannot matter.
func TestAbsorptionFreshwaterPHIndependent(t *testing.T) {
	base := FreshwaterTank()
	for _, ph := range []float64{0, 6, 7, 9} {
		m := base
		m.AcidityPH = ph
		if a, b := m.Absorption(5*units.KHz), base.Absorption(5*units.KHz); a != b {
			t.Fatalf("freshwater absorption depends on pH: %.9f (pH %.0f) vs %.9f", a, ph, b)
		}
	}
}

// TestValidatePHZeroSentinel: Validate accepts the pH-unset zero value
// but still rejects explicit out-of-domain values on both sides.
func TestValidatePHZeroSentinel(t *testing.T) {
	m := Seawater(36)
	m.AcidityPH = 0
	if err := m.Validate(); err != nil {
		t.Fatalf("pH 0 (unset sentinel) rejected: %v", err)
	}
	for _, ph := range []float64{5.9, 9.1, -1} {
		m.AcidityPH = ph
		if err := m.Validate(); err == nil {
			t.Fatalf("pH %.1f accepted, want out-of-domain error", ph)
		}
	}
}
