package deepnote

import (
	"testing"
	"testing/quick"
	"time"

	"deepnote/internal/core"
	"deepnote/internal/sig"
	"deepnote/internal/units"
)

// Cross-package invariants: properties that must hold across the whole
// simulation regardless of parameters, asserted at the public-API level.

// TestInvariantMoreDistanceNeverMoreDamage: moving the speaker away can
// never increase the drive's off-track excitation, for any frequency and
// any scenario.
func TestInvariantMoreDistanceNeverMoreDamage(t *testing.T) {
	prop := func(fRaw uint16, dRaw1, dRaw2 uint8, sRaw uint8) bool {
		f := units.Frequency(100 + int(fRaw)%16800)
		d1 := units.Distance(1+int(dRaw1)%100) * units.Centimeter
		d2 := units.Distance(1+int(dRaw2)%100) * units.Centimeter
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		s := []Scenario{Scenario1, Scenario2, Scenario3}[int(sRaw)%3]
		near, err := core.NewTestbed(s, d1)
		if err != nil {
			return false
		}
		far, err := core.NewTestbed(s, d2)
		if err != nil {
			return false
		}
		tone := sig.NewTone(f)
		return near.VibrationFor(tone).Amplitude >= far.VibrationFor(tone).Amplitude
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantQuieterToneNeverMoreDamage: reducing drive amplitude can
// never increase excitation.
func TestInvariantQuieterToneNeverMoreDamage(t *testing.T) {
	tb, err := NewTestbed(Scenario2, 1*Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(fRaw uint16, a1, a2 uint8) bool {
		f := units.Frequency(100 + int(fRaw)%16800)
		lo := float64(a1%101) / 100
		hi := float64(a2%101) / 100
		if lo > hi {
			lo, hi = hi, lo
		}
		vLo := tb.VibrationFor(sig.Tone{Freq: f, Amplitude: lo})
		vHi := tb.VibrationFor(sig.Tone{Freq: f, Amplitude: hi})
		return vHi.Amplitude >= vLo.Amplitude
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantAluminumNeverWorseAboveBand: at every frequency above the
// aluminum band top, the aluminum container transmits no more than the
// plastic one (relative to their mid-band levels) — the §4.1 material
// finding as a sweep-wide property.
func TestInvariantAluminumShieldsHighBand(t *testing.T) {
	p, err := NewTestbed(Scenario2, 1*Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewTestbed(Scenario3, 1*Centimeter)
	if err != nil {
		t.Fatal(err)
	}
	pMid := p.OffTrackRatio(650)
	aMid := a.OffTrackRatio(650)
	for f := units.Frequency(1400); f <= 8000; f += 200 {
		rp := p.OffTrackRatio(f) / pMid
		ra := a.OffTrackRatio(f) / aMid
		if ra > rp*1.05 {
			t.Fatalf("at %v aluminum relative response %.4f exceeds plastic %.4f", f, ra, rp)
		}
	}
}

// TestInvariantRecoveryIsComplete: any attack that ends returns the drive
// to full health — the mechanism is purely dynamic, with no hysteresis.
func TestInvariantRecoveryIsComplete(t *testing.T) {
	for _, f := range []units.Frequency{300, 650, 1300, 5000} {
		rig, err := NewRig(Scenario2, 1*Centimeter, 3)
		if err != nil {
			t.Fatal(err)
		}
		rig.ApplyTone(Tone(f))
		if _, err := RunFIO(rig, SeqWrite, time.Second); err != nil {
			t.Fatal(err)
		}
		rig.Silence()
		res, err := RunFIO(rig, SeqWrite, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if res.ThroughputMBps() < 22 {
			t.Fatalf("after %v attack: %.1f MB/s, want full recovery", f, res.ThroughputMBps())
		}
	}
}
